//! Ablation — output label mapping: the paper omits the optional learned
//! output mapping (Section 3, step 3). This binary quantifies what the
//! greedy frequency mapping would add: prompted accuracy of clean models
//! under identity vs greedy mapping.

use bprom_bench::{header, quick, row};
use bprom_data::SynthDataset;
use bprom_nn::models::{resnet_mini, ModelSpec};
use bprom_nn::{softmax, Layer, Mode, TrainConfig, Trainer};
use bprom_tensor::Rng;
use bprom_vp::{
    prompted_accuracy, train_prompt_backprop, LabelMap, PromptTrainConfig, VisualPrompt,
};

fn main() {
    let mut rng = Rng::new(88);
    header(
        "Ablation — identity vs greedy-frequency label mapping (clean models)",
        &["run", "identity", "greedy"],
    );
    let spec = ModelSpec::new(3, 16, 10);
    let trainer = Trainer::new(TrainConfig::default());
    let prompt_cfg = PromptTrainConfig {
        epochs: 25,
        ..PromptTrainConfig::default()
    };
    let target = SynthDataset::Stl10.generate(25, 16, 99).unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
    let identity = LabelMap::identity(10, 10).unwrap();
    let runs = if quick() { 2 } else { 4 };
    for run in 0..runs {
        let source = SynthDataset::Cifar10.generate(15, 16, 300 + run).unwrap();
        let mut model = resnet_mini(&spec, &mut rng).unwrap();
        trainer
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();
        let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        train_prompt_backprop(
            &mut model,
            &mut prompt,
            &t_train.images,
            &t_train.labels,
            &identity,
            &prompt_cfg,
            &mut rng,
        )
        .unwrap();
        let acc_id = prompted_accuracy(
            &mut model,
            &prompt,
            &t_test.images,
            &t_test.labels,
            &identity,
        )
        .unwrap();
        // Fit a greedy mapping on the training split's prompted outputs.
        let prompted = prompt.apply_batch(&t_train.images).unwrap();
        let probs = softmax(&model.forward(&prompted, Mode::Eval).unwrap()).unwrap();
        let greedy = LabelMap::greedy_frequency(&probs, &t_train.labels, 10).unwrap();
        let acc_greedy =
            prompted_accuracy(&mut model, &prompt, &t_test.images, &t_test.labels, &greedy)
                .unwrap();
        row(&format!("run {run}"), &[acc_id, acc_greedy]);
    }
}
