//! Table 1: input-level detectors (TeCo, SCALE-UP) degrade sharply when
//! the model is actually clean — the paper's motivation for model-level
//! detection.

use bprom_attacks::{poison_dataset, Attack, AttackKind};
use bprom_bench::{header, row};
use bprom_data::SynthDataset;
use bprom_defenses::input_level::{scale_up_scores, teco_scores};
use bprom_metrics::{auroc, f1_score};
use bprom_nn::models::{build, Architecture, ModelSpec};
use bprom_nn::{Sequential, TrainConfig, Trainer};
use bprom_tensor::{Rng, Tensor};

fn eval_inputs(
    model: &mut Sequential,
    attack: &dyn Attack,
    test: &bprom_data::Dataset,
    rng: &mut Rng,
) -> (Tensor, Vec<bool>) {
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for i in 0..40.min(test.len()) {
        let x = test.images.sample(i).unwrap();
        if i % 2 == 0 {
            images.push(attack.apply(&x, rng).unwrap());
            labels.push(true);
        } else {
            images.push(x);
            labels.push(false);
        }
    }
    let _ = model;
    (Tensor::stack(&images).unwrap(), labels)
}

fn main() {
    let mut rng = Rng::new(1);
    header(
        "Table 1 — input-level detectors on backdoored vs clean models",
        &[
            "detector/attack",
            "bd F1",
            "bd AUROC",
            "clean F1",
            "clean AUROC",
        ],
    );
    for kind in [AttackKind::BadNets, AttackKind::Blend, AttackKind::WaNet] {
        let data = SynthDataset::Cifar10.generate(40, 16, 5).unwrap();
        let (train, test) = data.split(0.8, &mut rng).unwrap();
        let attack = kind.build(16, &mut rng).unwrap();
        let cfg = kind.default_config(0);
        let spec = ModelSpec::new(3, 16, 10);
        let trainer = Trainer::new(TrainConfig::default());
        // Backdoored and clean models.
        let poisoned = poison_dataset(&train, attack.as_ref(), &cfg, &mut rng).unwrap();
        let mut bd = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        trainer
            .fit(
                &mut bd,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                &mut rng,
            )
            .unwrap();
        let mut clean = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        trainer
            .fit(&mut clean, &train.images, &train.labels, &mut rng)
            .unwrap();
        for (name, which) in [("TeCo", 0usize), ("SCALE-UP", 1)] {
            let mut vals = Vec::new();
            for model in [&mut bd, &mut clean] {
                let (inputs, truth) = eval_inputs(model, attack.as_ref(), &test, &mut rng);
                let scores = if which == 0 {
                    teco_scores(model, &inputs, &mut rng).unwrap()
                } else {
                    scale_up_scores(model, &inputs).unwrap()
                };
                let auc = auroc(&scores, &truth).unwrap();
                // F1 at the median-score threshold.
                let mut sorted = scores.clone();
                sorted.sort_by(f32::total_cmp);
                let thr = sorted[sorted.len() / 2];
                let preds: Vec<bool> = scores.iter().map(|&s| s > thr).collect();
                let f1 = f1_score(&preds, &truth).unwrap();
                vals.push(f1);
                vals.push(auc);
            }
            row(&format!("{name}/{}", kind.name()), &vals);
        }
    }
}
