//! Table 2: class subspace inconsistency worsens as the number of backdoor
//! target classes grows (1, 2, 3 targets), measured by prompted accuracy.

use bprom_attacks::{poison_dataset, AttackKind};
use bprom_bench::{header, row};
use bprom_data::SynthDataset;
use bprom_nn::models::{resnet_mini, ModelSpec};
use bprom_nn::{TrainConfig, Trainer};
use bprom_tensor::Rng;
use bprom_vp::{
    prompted_accuracy, train_prompt_backprop, LabelMap, PromptTrainConfig, VisualPrompt,
};

fn main() {
    let mut rng = Rng::new(2);
    header(
        "Table 2 — prompted accuracy vs number of target classes",
        &["dataset", "1 target", "2 targets", "3 targets"],
    );
    // Measured at the detector's own prompting operating point.
    let prompt_cfg = PromptTrainConfig::default();
    let target = SynthDataset::Stl10.generate(25, 16, 99).unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
    for source_ds in [SynthDataset::Cifar10, SynthDataset::Gtsrb] {
        let k = source_ds.num_classes();
        let map = LabelMap::identity(10, k).unwrap();
        let spec = ModelSpec::new(3, 16, k);
        let trainer = Trainer::new(TrainConfig::default());
        let mut values = Vec::new();
        for n_targets in 1..=3usize {
            let mut accs = Vec::new();
            for seed in 0..2u64 {
                let source = source_ds.generate(15, 16, 40 + seed).unwrap();
                // Split the poison budget over n_targets separate backdoors.
                let mut data = source.clone();
                for t in 0..n_targets {
                    let attack = AttackKind::BadNets.build(16, &mut rng).unwrap();
                    let mut cfg = AttackKind::BadNets.default_config(t);
                    cfg.poison_rate /= n_targets as f32;
                    data = poison_dataset(&data, attack.as_ref(), &cfg, &mut rng)
                        .unwrap()
                        .dataset;
                }
                let mut model = resnet_mini(&spec, &mut rng).unwrap();
                trainer
                    .fit(&mut model, &data.images, &data.labels, &mut rng)
                    .unwrap();
                let mut p = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
                train_prompt_backprop(
                    &mut model,
                    &mut p,
                    &t_train.images,
                    &t_train.labels,
                    &map,
                    &prompt_cfg,
                    &mut rng,
                )
                .unwrap();
                accs.push(
                    prompted_accuracy(&mut model, &p, &t_test.images, &t_test.labels, &map)
                        .unwrap(),
                );
            }
            values.push(accs.iter().sum::<f32>() / accs.len() as f32);
        }
        row(source_ds.name(), &values);
    }
}
