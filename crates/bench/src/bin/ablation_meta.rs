//! Ablations called out in DESIGN.md §6:
//! (1) shadow-prompting optimizer: CMA-ES (default) vs backprop — the
//!     paper's letter vs the substrate-consistent variant;
//! (2) probe count q.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom, ShadowPrompting};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(66);
    header(
        "Ablation — shadow prompting optimizer (CIFAR-10, BadNets zoo)",
        &["variant", "auroc", "f1"],
    );
    for (name, method) in [
        ("cma-es (default)", ShadowPrompting::CmaEs),
        ("backprop (paper letter)", ShadowPrompting::Backprop),
    ] {
        let mut cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.shadow_prompting = method;
        let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
        let zoo = build_suspicious_zoo(
            &zoo_config(SynthDataset::Cifar10, AttackKind::BadNets),
            &mut rng,
        )
        .expect("zoo");
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(name, &[report.auroc, report.f1]);
    }

    header(
        "Ablation — probe count q (CIFAR-10, BadNets zoo)",
        &["q", "auroc", "f1"],
    );
    for q in [8usize, 16, 32] {
        let mut cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.probe_count = q;
        let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
        let zoo = build_suspicious_zoo(
            &zoo_config(SynthDataset::Cifar10, AttackKind::BadNets),
            &mut rng,
        )
        .expect("zoo");
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(&q.to_string(), &[report.auroc, report.f1]);
    }
}
