//! Tables 3: prompted-model accuracy vs trigger size (Blend / Adap-Blend,
//! patch-restricted variants), CIFAR-10 and GTSRB sources.

use bprom_attacks::{poison_dataset, AdapBlend, Attack, Blend};
use bprom_bench::{header, row};
use bprom_data::SynthDataset;
use bprom_nn::models::{resnet_mini, ModelSpec};
use bprom_nn::{TrainConfig, Trainer};
use bprom_tensor::Rng;
use bprom_vp::{
    prompted_accuracy, train_prompt_backprop, LabelMap, PromptTrainConfig, VisualPrompt,
};

fn main() {
    let mut rng = Rng::new(33);
    // Paper sweeps 4/8/16 px on 32 px images; scaled to 2/4/8 on 16 px.
    header(
        "Table 3 — prompted accuracy vs trigger size",
        &["dataset/size", "Blend", "Adap-Blend"],
    );
    // Measured at the detector's own prompting operating point.
    let prompt_cfg = PromptTrainConfig::default();
    let target = SynthDataset::Stl10.generate(25, 16, 99).unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
    for source_ds in [SynthDataset::Cifar10, SynthDataset::Gtsrb] {
        let k = source_ds.num_classes();
        let map = LabelMap::identity(10, k).unwrap();
        let spec = ModelSpec::new(3, 16, k);
        let trainer = Trainer::new(TrainConfig::default());
        for patch in [2usize, 4, 8] {
            let mut values = Vec::new();
            for variant in 0..2usize {
                let attack: Box<dyn Attack> = if variant == 0 {
                    Box::new(Blend::with_patch_size(16, patch, &mut rng).unwrap())
                } else {
                    Box::new(AdapBlend::with_patch_size(16, patch, &mut rng).unwrap())
                };
                let source = source_ds.generate(15, 16, 50 + patch as u64).unwrap();
                let cfg = bprom_attacks::PoisonConfig::new(0.15, 0.0, 0);
                let data = poison_dataset(&source, attack.as_ref(), &cfg, &mut rng)
                    .unwrap()
                    .dataset;
                let mut model = resnet_mini(&spec, &mut rng).unwrap();
                trainer
                    .fit(&mut model, &data.images, &data.labels, &mut rng)
                    .unwrap();
                let mut p = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
                train_prompt_backprop(
                    &mut model,
                    &mut p,
                    &t_train.images,
                    &t_train.labels,
                    &map,
                    &prompt_cfg,
                    &mut rng,
                )
                .unwrap();
                values.push(
                    prompted_accuracy(&mut model, &p, &t_test.images, &t_test.labels, &map)
                        .unwrap(),
                );
            }
            row(&format!("{} {patch}x{patch}", source_ds.name()), &values);
        }
    }
}
