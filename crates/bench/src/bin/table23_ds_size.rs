//! Table 23: AUROC vs reserved-clean-set size D_S (1 %, 5 %, 10 %),
//! BadNets suspicious models on CIFAR-10.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(23);
    header(
        "Table 23 — AUROC vs D_S fraction (CIFAR-10, BadNets & Blend)",
        &["fraction", "BadNets", "Blend"],
    );
    for fraction in [0.05f32, 0.1, 0.2] {
        let mut cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.ds_fraction = fraction;
        let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
        let mut values = Vec::new();
        for attack in [AttackKind::BadNets, AttackKind::Blend] {
            let zoo = build_suspicious_zoo(&zoo_config(SynthDataset::Cifar10, attack), &mut rng)
                .expect("zoo");
            let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
            values.push(report.auroc);
        }
        row(&format!("{:.0}%", fraction * 100.0), &values);
    }
    println!("(paper sweeps 1/5/10% of a 10k test set; our emulated test set is 1.5k, so the sweep starts at 5% to keep D_S trainable)");
}
