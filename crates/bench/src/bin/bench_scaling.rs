//! Thread-scaling benchmark for the `bprom-par` execution layer: times
//! the three parallel pipeline phases — shadow training, CMA-ES prompt
//! learning, forest fitting — at 1, 2 and 4 worker threads, and writes
//! `BENCH_scaling.json` with the wall-clock numbers and speedups.
//!
//! Results are deterministic across thread counts (seed-per-work-unit),
//! so the runs time *the same* computation; only the scheduling differs.
//! Expect near-linear scaling on shadow training and forest fitting up to
//! the physical core count, and somewhat less on CMA-ES (population 12 is
//! a shallow work pool per generation).

use bprom::{BpromConfig, ShadowSet};
use bprom_bench::{header, quick, row};
use bprom_data::SynthDataset;
use bprom_meta::{ForestConfig, RandomForest};
use bprom_nn::models::{mlp, ModelSpec};
use bprom_nn::TrainConfig;
use bprom_obs::{ToJson, Value};
use bprom_tensor::Rng;
use bprom_vp::{train_prompt_cmaes, LabelMap, PromptTrainConfig, QueryOracle, VisualPrompt};
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn time_shadow_training(threads: usize) -> f64 {
    bprom_par::set_thread_count(threads);
    let mut rng = Rng::new(100);
    let mut cfg = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    cfg.clean_shadows = if quick() { 2 } else { 4 };
    cfg.backdoor_shadows = cfg.clean_shadows;
    cfg.train = TrainConfig {
        epochs: if quick() { 2 } else { 4 },
        ..TrainConfig::default()
    };
    let ds = SynthDataset::Cifar10.generate(15, 16, 9).expect("dataset");
    let t0 = Instant::now();
    let set = ShadowSet::train(&cfg, &ds, &mut rng).expect("shadow training");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(set.len(), cfg.clean_shadows + cfg.backdoor_shadows);
    elapsed
}

fn time_cmaes(threads: usize) -> f64 {
    bprom_par::set_thread_count(threads);
    let mut rng = Rng::new(200);
    let model = mlp(&ModelSpec::new(3, 16, 10), &mut rng).expect("model");
    let oracle = QueryOracle::new(model, 10);
    let target = SynthDataset::Stl10.generate(10, 16, 9).expect("dataset");
    let map = LabelMap::identity(10, 10).expect("map");
    let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).expect("prompt");
    let cfg = PromptTrainConfig {
        cmaes_generations: if quick() { 10 } else { 25 },
        cmaes_population: 12,
        ..PromptTrainConfig::default()
    };
    let t0 = Instant::now();
    train_prompt_cmaes(
        &oracle,
        &mut prompt,
        &target.images,
        &target.labels,
        &map,
        &cfg,
        &mut rng,
    )
    .expect("cmaes");
    t0.elapsed().as_secs_f64()
}

fn time_forest(threads: usize) -> f64 {
    bprom_par::set_thread_count(threads);
    let mut rng = Rng::new(300);
    let rows = 40;
    let dim = 120;
    let features: Vec<Vec<f32>> = (0..rows)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * j) % 23) as f32 / 23.0 + if i < rows / 2 { 0.0 } else { 0.4 })
                .collect()
        })
        .collect();
    let labels: Vec<bool> = (0..rows).map(|i| i >= rows / 2).collect();
    let cfg = ForestConfig {
        trees: if quick() { 300 } else { 1000 },
        ..ForestConfig::default()
    };
    let t0 = Instant::now();
    let forest = RandomForest::fit(&features, &labels, &cfg, &mut rng).expect("forest");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(forest.len(), cfg.trees);
    elapsed
}

fn main() {
    header(
        "bprom-par thread scaling (wall-clock seconds per phase)",
        &["phase", "t1", "t2", "t4", "speedup@4"],
    );
    type Phase = (&'static str, fn(usize) -> f64);
    let phases: [Phase; 3] = [
        ("shadow_train", time_shadow_training),
        ("cmaes", time_cmaes),
        ("forest", time_forest),
    ];
    let mut report = Vec::new();
    for (name, run) in phases {
        let secs: Vec<f64> = THREAD_COUNTS.iter().map(|&t| run(t)).collect();
        let speedup = secs[0] / secs[2].max(1e-9);
        row(
            name,
            &[
                secs[0] as f32,
                secs[1] as f32,
                secs[2] as f32,
                speedup as f32,
            ],
        );
        report.push((
            name,
            Value::object(vec![
                ("threads_1_s", secs[0].to_json()),
                ("threads_2_s", secs[1].to_json()),
                ("threads_4_s", secs[2].to_json()),
                ("speedup_at_4", speedup.to_json()),
            ]),
        ));
    }
    bprom_par::set_thread_count(0);
    let json = Value::object(report).to_pretty();
    match std::fs::write("BENCH_scaling.json", &json) {
        Ok(()) => println!("\nwritten -> BENCH_scaling.json"),
        Err(e) => eprintln!("BENCH_scaling.json write failed: {e}"),
    }
}
