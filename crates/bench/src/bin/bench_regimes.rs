//! Oracle-regime degradation curves: AUROC of BPROM when the suspicious
//! endpoint's response contract degrades from full soft-score vectors
//! through quantization and top-k truncation down to hard labels only,
//! plus an adaptive-attacker leg where the endpoint detects the probe
//! traffic and answers evasively.
//!
//! Each regime gets its own detector (fitted from the same shadow-zoo
//! recipe under that regime's fitness and feature extraction — the
//! per-regime meta-forest) and audits the same suspicious zoo. Results
//! land in `BENCH_regimes.json`:
//!
//! - `regimes`: one entry per declared regime with its AUROC/F1, query
//!   spend, and the AUROC drop relative to full scores;
//! - `adaptive`: the adaptive-attacker tier (pad-style prompting against
//!   a default [`AdaptiveConfig`] endpoint) with evasion totals, the
//!   exact query bill, and whether rule B012 fired.
//!
//! `BPROM_QUICK=1` shrinks shadow/zoo counts as everywhere else.

use bprom::{build_suspicious_zoo, evaluate_detector, evaluate_detector_via, Bprom, OracleRegime};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, quick, row, zoo_config, TelemetryGuard};
use bprom_data::SynthDataset;
use bprom_faults::{AdaptiveConfig, AdaptiveOracle};
use bprom_obs::{ToJson, Value};
use bprom_tensor::Rng;
use bprom_vp::PromptStyle;

/// The degradation sweep, most to least informative.
fn regimes() -> [OracleRegime; 4] {
    [
        OracleRegime::FullScores,
        OracleRegime::Quantized(2),
        OracleRegime::TopK(3),
        OracleRegime::LabelOnly,
    ]
}

struct RegimeResult {
    regime: String,
    auroc: f32,
    f1: f32,
    total_queries: u64,
}

fn main() {
    let _telemetry = TelemetryGuard::begin("bench_regimes");
    let source = SynthDataset::Cifar10;

    header(
        "Oracle-regime AUROC degradation (BadNets zoo)",
        &["regime", "auroc", "f1", "auroc_drop", "queries"],
    );
    let mut results: Vec<RegimeResult> = Vec::new();
    let mut full_auroc = f32::NAN;
    for regime in regimes() {
        let mut rng = Rng::new(42);
        let mut cfg = detector_config(source, SynthDataset::Stl10);
        cfg.regime = regime;
        let detector = Bprom::fit(&cfg, &mut rng).expect("detector fit");
        let zoo_cfg = zoo_config(source, AttackKind::BadNets);
        let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        if regime == OracleRegime::FullScores {
            full_auroc = report.auroc;
        }
        let drop = full_auroc - report.auroc;
        row(
            &regime.as_wire(),
            &[report.auroc, report.f1, drop, report.total_queries as f32],
        );
        results.push(RegimeResult {
            regime: regime.as_wire(),
            auroc: report.auroc,
            f1: report.f1,
            total_queries: report.total_queries,
        });
    }

    // Adaptive-attacker tier: pad-style prompting (the style the
    // attacker's similarity test can see) against an evasive endpoint.
    // The interesting numbers are the evasion totals and the B012
    // findings — a flagged-untrustworthy audit, not a usable AUROC.
    let mut rng = Rng::new(42);
    let mut cfg = detector_config(source, SynthDataset::Stl10);
    cfg.prompt_style = PromptStyle::Pad;
    let detector = Bprom::fit(&cfg, &mut rng).expect("detector fit");
    let zoo_cfg = zoo_config(source, AttackKind::BadNets);
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
    let adaptive_report =
        evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
            let adaptive = AdaptiveOracle::new(&oracle, AdaptiveConfig::default(), 0xADA9);
            detector.inspect(&adaptive, rng)
        })
        .expect("adaptive eval");
    let evasions: u64 = adaptive_report
        .audits
        .iter()
        .map(|a| a.signals.evasive_responses)
        .sum();
    let b012_audits = adaptive_report
        .audits
        .iter()
        .filter(|a| a.findings.iter().any(|f| f.rule.code() == "B012"))
        .count();
    assert!(
        evasions > 0,
        "adaptive endpoint must evade pad-style probe batches"
    );
    assert_eq!(
        b012_audits,
        adaptive_report.audits.len(),
        "every evaded audit must raise B012"
    );
    header(
        "Adaptive-attacker tier (pad-style prompting, evasive endpoint)",
        &["leg", "auroc", "evasions", "b012_audits", "queries"],
    );
    row(
        "adaptive",
        &[
            adaptive_report.auroc,
            evasions as f32,
            b012_audits as f32,
            adaptive_report.total_queries as f32,
        ],
    );

    let json = Value::object(vec![
        ("quick", quick().to_json()),
        (
            "regimes",
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::object(vec![
                            ("regime", r.regime.to_json()),
                            ("auroc", r.auroc.to_json()),
                            ("f1", r.f1.to_json()),
                            ("auroc_drop", (full_auroc - r.auroc).to_json()),
                            ("total_queries", r.total_queries.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "adaptive",
            Value::object(vec![
                ("auroc", adaptive_report.auroc.to_json()),
                ("evasions", evasions.to_json()),
                ("b012_audits", (b012_audits as u64).to_json()),
                ("audits", (adaptive_report.audits.len() as u64).to_json()),
                ("total_queries", adaptive_report.total_queries.to_json()),
            ]),
        ),
    ])
    .to_pretty();
    match std::fs::write("BENCH_regimes.json", &json) {
        Ok(()) => println!("written -> BENCH_regimes.json"),
        Err(e) => eprintln!("BENCH_regimes.json write failed: {e}"),
    }
}
