//! Table 4: prompted-model accuracy vs poison rate (Blend / Adap-Blend).

use bprom_attacks::{poison_dataset, AttackKind};
use bprom_bench::{header, row};
use bprom_data::SynthDataset;
use bprom_nn::models::{resnet_mini, ModelSpec};
use bprom_nn::{TrainConfig, Trainer};
use bprom_tensor::Rng;
use bprom_vp::{
    prompted_accuracy, train_prompt_backprop, LabelMap, PromptTrainConfig, VisualPrompt,
};

fn main() {
    let mut rng = Rng::new(44);
    header(
        "Table 4 — prompted accuracy vs poison rate",
        &["dataset/rate", "Blend", "Adap-Blend"],
    );
    // Measured at the detector's own prompting operating point.
    let prompt_cfg = PromptTrainConfig::default();
    let target = SynthDataset::Stl10.generate(25, 16, 99).unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
    for source_ds in [SynthDataset::Cifar10, SynthDataset::Gtsrb] {
        let k = source_ds.num_classes();
        let map = LabelMap::identity(10, k).unwrap();
        let spec = ModelSpec::new(3, 16, k);
        let trainer = Trainer::new(TrainConfig::default());
        for rate in [0.05f32, 0.1, 0.2] {
            let mut values = Vec::new();
            for kind in [AttackKind::Blend, AttackKind::AdapBlend] {
                let attack = kind.build(16, &mut rng).unwrap();
                let source = source_ds.generate(15, 16, (rate * 100.0) as u64).unwrap();
                let cfg = bprom_attacks::PoisonConfig::new(rate, 0.0, 0);
                let data = poison_dataset(&source, attack.as_ref(), &cfg, &mut rng)
                    .unwrap()
                    .dataset;
                let mut model = resnet_mini(&spec, &mut rng).unwrap();
                trainer
                    .fit(&mut model, &data.images, &data.labels, &mut rng)
                    .unwrap();
                let mut p = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
                train_prompt_backprop(
                    &mut model,
                    &mut p,
                    &t_train.images,
                    &t_train.labels,
                    &map,
                    &prompt_cfg,
                    &mut rng,
                )
                .unwrap();
                values.push(
                    prompted_accuracy(&mut model, &p, &t_test.images, &t_test.labels, &map)
                        .unwrap(),
                );
            }
            row(
                &format!("{} {:.0}%", source_ds.name(), rate * 100.0),
                &values,
            );
        }
    }
}
