//! Table 13 (Appendix A.1): the attack configurations in force — poison and
//! cover rates per attack, plus the substrate scaling rationale.

use bprom_attacks::AttackKind;
use bprom_bench::header;

fn main() {
    header(
        "Table 13 — attack configurations (substrate scale)",
        &["attack", "poison rate", "cover rate", "clean-label"],
    );
    for kind in AttackKind::ALL {
        let cfg = kind.default_config(0);
        let mut rng = bprom_tensor::Rng::new(0);
        let clean_label = kind
            .build(16, &mut rng)
            .map(|a| a.is_clean_label())
            .unwrap_or(false);
        println!(
            "{}\t{:.1}%\t{:.1}%\t{}",
            kind.name(),
            cfg.poison_rate * 100.0,
            cfg.cover_rate * 100.0,
            clean_label
        );
    }
    println!(
        "(paper rates are 0.3-5% of 50k-sample datasets; ours are scaled so the\n absolute poisoned-sample counts stay in the effective range on ~200-sample sets)"
    );
}
