//! Table 21: class-count mismatch — D_S = CIFAR-100 (100 classes),
//! D_T = STL-10 (10 classes).

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(21);
    header(
        "Table 21 — D_S = CIFAR-100, D_T = STL-10",
        &["attack", "auroc", "f1"],
    );
    let mut cfg = detector_config(SynthDataset::Cifar100, SynthDataset::Stl10);
    // 100 classes need more reserved samples per class to train shadows.
    cfg.test_samples_per_class = 40;
    cfg.ds_fraction = 0.25;
    let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
    for attack in [AttackKind::BadNets, AttackKind::Blend] {
        let mut zoo_cfg = zoo_config(SynthDataset::Cifar100, attack);
        zoo_cfg.samples_per_class = 12;
        let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(attack.name(), &[report.auroc, report.f1]);
    }
}
