//! Tables 19/20: external dataset swap — D_T changed from STL-10 to SVHN.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(19);
    for source in [SynthDataset::Cifar10, SynthDataset::Gtsrb] {
        header(
            &format!("Tables 19/20 — D_T = SVHN, D_S = {source}"),
            &["attack", "f1", "auroc"],
        );
        let cfg = detector_config(source, SynthDataset::Svhn);
        let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
        for attack in [AttackKind::BadNets, AttackKind::Blend, AttackKind::Dynamic] {
            let zoo = build_suspicious_zoo(&zoo_config(source, attack), &mut rng).expect("zoo");
            let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
            row(attack.name(), &[report.f1, report.auroc]);
        }
    }
}
