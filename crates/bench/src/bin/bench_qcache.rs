//! Query-cache benchmark: measures (a) the real provider-side hit rate
//! the cache achieves on the pipeline's own workload — a CMA-ES prompt
//! search followed by the prompted-accuracy pass, exactly the suspicious
//! -model inspection path — and (b) the wall-clock overhead the cache
//! layer adds on a pure-miss adversarial stream (every batch unique, so
//! digesting and bookkeeping buy nothing). Writes `BENCH_qcache.json`;
//! the acceptance targets are a strictly positive hit rate on the
//! pipeline workload and < 5 % overhead at a 0 % hit rate (gated in CI).

use bprom_bench::{header, quick, row};
use bprom_data::SynthDataset;
use bprom_nn::models::{mlp, ModelSpec};
use bprom_obs::{ToJson, Value};
use bprom_qcache::{CacheConfig, CachingOracle};
use bprom_tensor::{Rng, Tensor};
use bprom_vp::{
    prompted_accuracy_blackbox, train_prompt_cmaes, BlackBoxModel, LabelMap, PromptTrainConfig,
    QueryOracle, VisualPrompt,
};
use std::time::Instant;

fn oracle() -> QueryOracle {
    let mut rng = Rng::new(100);
    let model = mlp(&ModelSpec::new(3, 16, 10), &mut rng).expect("model");
    QueryOracle::new(model, 10)
}

/// Leg A: the inspection workload — CMA-ES prompt learning plus the
/// prompted-accuracy replay — through an unbounded cache. Returns
/// (hit_rate, hits, misses, logical, provider).
fn pipeline_hit_rate() -> (f64, u64, u64, u64, u64) {
    let cached = CachingOracle::new(oracle(), CacheConfig::unbounded());
    let mut rng = Rng::new(200);
    let target = SynthDataset::Stl10.generate(10, 16, 9).expect("dataset");
    let map = LabelMap::identity(10, 10).expect("map");
    let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).expect("prompt");
    let config = PromptTrainConfig {
        cmaes_generations: if quick() { 6 } else { 15 },
        cmaes_population: 8,
        ..PromptTrainConfig::default()
    };
    train_prompt_cmaes(
        &cached,
        &mut prompt,
        &target.images,
        &target.labels,
        &map,
        &config,
        &mut rng,
    )
    .expect("cmaes");
    // The accuracy pass replays prompted content the search already paid
    // for — the same call Bprom::inspect makes after installing θ*.
    prompted_accuracy_blackbox(&cached, &prompt, &target.images, &target.labels, &map)
        .expect("accuracy");
    let (hits, misses) = (cached.hits(), cached.misses());
    let logical = cached.queries_used();
    let provider = cached.inner().queries_used();
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    (rate, hits, misses, logical, provider)
}

/// Times one pass of a pure-miss stream (every batch unique) through
/// `oracle`; the stream is pre-generated so only the query path is
/// timed.
fn time_stream(oracle: &dyn BlackBoxModel, batches: &[Tensor]) -> f64 {
    let t0 = Instant::now();
    for b in batches {
        std::hint::black_box(oracle.query(b).expect("query"));
    }
    t0.elapsed().as_secs_f64()
}

/// Leg B: 0 %-hit overhead — the same unique-batch stream through a bare
/// oracle and through an LRU cache that never hits. Both legs are
/// repeated and the minimum kept, so scheduler noise does not decide a
/// 5 % gate. Returns (bare_s, cached_s, hit_rate_check).
fn adversarial_overhead() -> (f64, f64, f64) {
    let mut rng = Rng::new(300);
    let rounds = if quick() { 40 } else { 160 };
    let batches: Vec<Tensor> = (0..rounds)
        .map(|_| Tensor::rand_uniform(&[16, 3, 16, 16], 0.0, 1.0, &mut rng))
        .collect();

    let bare = oracle();
    // Warm both code paths once, then keep the fastest of three passes.
    // Every timed cached pass gets a *fresh* cache: replaying the stream
    // into a warm cache would measure hits, not the pure-miss tax.
    time_stream(&bare, &batches[..batches.len().min(4)]);
    time_stream(
        &CachingOracle::new(oracle(), CacheConfig::lru(4096)),
        &batches[..batches.len().min(4)],
    );
    let bare_s = (0..3)
        .map(|_| time_stream(&bare, &batches))
        .fold(f64::INFINITY, f64::min);
    let mut cached_s = f64::INFINITY;
    let mut rate = f64::NAN;
    for _ in 0..3 {
        let cached = CachingOracle::new(oracle(), CacheConfig::lru(4096));
        cached_s = cached_s.min(time_stream(&cached, &batches));
        rate = cached.hits() as f64 / (cached.hits() + cached.misses()).max(1) as f64;
    }
    (bare_s, cached_s, rate)
}

fn main() {
    header(
        "bprom-qcache: pipeline hit rate & pure-miss overhead",
        &["leg", "value"],
    );

    let (hit_rate, hits, misses, logical, provider) = pipeline_hit_rate();
    row("pipeline_hit_rate", &[hit_rate as f32]);
    println!(
        "  CMA-ES + accuracy pass: {hits} hits / {misses} misses \
         ({logical} logical queries, {provider} sent to the provider)"
    );

    let (bare_s, cached_s, miss_rate_check) = adversarial_overhead();
    let overhead = cached_s / bare_s.max(1e-9) - 1.0;
    row("bare_s", &[bare_s as f32]);
    row("cached_s", &[cached_s as f32]);
    row("overhead_frac", &[overhead as f32]);
    println!(
        "  pure-miss stream: {:.2} % cache overhead (target < 5 %; stream hit rate {:.3})",
        overhead * 100.0,
        miss_rate_check
    );

    let json = Value::object(vec![
        (
            "note",
            Value::Str(
                "hit_rate covers a single-model inspection, where almost every \
                 CMA-ES candidate query is unique content — sub-1% is expected \
                 and is not a regression. The cache pays off across repeated \
                 audits of the same provider (accuracy-pass replay here; \
                 cross-run reuse lands with the fleet registry, ROADMAP item 1)."
                    .to_string(),
            ),
        ),
        ("hit_rate", hit_rate.to_json()),
        ("cache_hits", hits.to_json()),
        ("cache_misses", misses.to_json()),
        ("logical_queries", logical.to_json()),
        ("provider_queries", provider.to_json()),
        ("bare_s", bare_s.to_json()),
        ("cached_s", cached_s.to_json()),
        ("overhead_frac", overhead.to_json()),
        ("adversarial_hit_rate", miss_rate_check.to_json()),
    ])
    .to_pretty();
    match std::fs::write("BENCH_qcache.json", &json) {
        Ok(()) => println!("written -> BENCH_qcache.json"),
        Err(e) => eprintln!("BENCH_qcache.json write failed: {e}"),
    }
}
