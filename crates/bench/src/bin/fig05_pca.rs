//! Figure 5: PCA of meta features — clean vs backdoored models separate in
//! the prompted-confidence space.

use bprom::meta_model::{probe_features_whitebox, ProbeSet};
use bprom::prompting::prompt_shadows;
use bprom::shadow::ShadowSet;
use bprom_bench::{detector_config, header};
use bprom_data::SynthDataset;
use bprom_metrics::pca2;
use bprom_tensor::Rng;
use bprom_vp::LabelMap;

fn main() {
    let mut rng = Rng::new(5);
    let config = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    let source_test = SynthDataset::Cifar10
        .generate(config.test_samples_per_class, 16, rng.next_u64())
        .unwrap();
    let ds = source_test.subsample(config.ds_fraction, &mut rng).unwrap();
    let target = SynthDataset::Stl10
        .generate(25, 16, rng.next_u64())
        .unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
    let map = LabelMap::identity(10, 10).unwrap();
    let mut shadows = ShadowSet::train(&config, &ds, &mut rng).unwrap();
    let prompts = prompt_shadows(&config, &mut shadows, &t_train, &map, &mut rng).unwrap();
    let probes = ProbeSet::sample(&t_test, config.probe_count, &mut rng).unwrap();
    let mut features = Vec::new();
    for (s, p) in shadows.shadows.iter_mut().zip(&prompts) {
        features.push(probe_features_whitebox(&mut s.model, &p.prompt, &probes).unwrap());
    }
    let pca = pca2(&features).unwrap();
    header(
        "Figure 5 — PCA of prompted meta-features",
        &["label", "pc1", "pc2"],
    );
    for (point, shadow) in pca.points.iter().zip(&shadows.shadows) {
        println!(
            "{}\t{:.3}\t{:.3}",
            if shadow.backdoored {
                "backdoor"
            } else {
                "clean"
            },
            point[0],
            point[1]
        );
    }
    println!(
        "explained variance: pc1={:.3} pc2={:.3}",
        pca.explained[0], pca.explained[1]
    );
}
