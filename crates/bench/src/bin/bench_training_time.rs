//! Section 6.2 "Training Time of BPROM": wall-clock of detector fitting
//! for 10/20 shadow models, per architecture.

use bprom::Bprom;
use bprom_bench::{detector_config, header, quick, TelemetryGuard};
use bprom_data::SynthDataset;
use bprom_nn::models::Architecture;
use bprom_tensor::Rng;
use std::time::Instant;

fn main() {
    let _telemetry = TelemetryGuard::begin("bench_training_time");
    let mut rng = Rng::new(62);
    header(
        "Training time of BPROM (paper: 2.3-9.5h on RTX4090)",
        &["arch", "shadows", "seconds"],
    );
    let counts: Vec<usize> = if quick() { vec![4] } else { vec![10, 20] };
    for arch in [Architecture::ResNetMini, Architecture::MobileNetMini] {
        for &total in &counts {
            let mut cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
            cfg.architecture = arch;
            cfg.clean_shadows = total / 2;
            cfg.backdoor_shadows = total / 2;
            let t0 = Instant::now();
            let _ = Bprom::fit(&cfg, &mut rng).expect("fit");
            println!("{arch}\t{total}\t{:.1}", t0.elapsed().as_secs_f32());
        }
    }
}
