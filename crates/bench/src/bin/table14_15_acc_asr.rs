//! Tables 14/15: clean accuracy and ASR of infected models across attacks,
//! ResNetMini and MobileNetMini.

use bprom_attacks::{attack_success_rate, poison_dataset, AttackKind};
use bprom_bench::{header, quick, row};
use bprom_data::SynthDataset;
use bprom_nn::models::{build, Architecture, ModelSpec};
use bprom_nn::{TrainConfig, Trainer};
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(14);
    let attacks = AttackKind::MAIN_TABLE;
    let archs = if quick() {
        vec![Architecture::ResNetMini]
    } else {
        vec![Architecture::ResNetMini, Architecture::MobileNetMini]
    };
    for arch in archs {
        header(
            &format!("Tables 14/15 — ACC and ASR on {arch} (CIFAR-10)"),
            &["attack", "acc", "asr"],
        );
        for kind in attacks {
            let data = SynthDataset::Cifar10.generate(40, 16, 77).unwrap();
            let (train, test) = data.split(0.8, &mut rng).unwrap();
            let attack = kind.build(16, &mut rng).unwrap();
            let cfg = kind.default_config(0);
            let poisoned = poison_dataset(&train, attack.as_ref(), &cfg, &mut rng).unwrap();
            let spec = ModelSpec::new(3, 16, 10);
            let mut model = build(arch, &spec, &mut rng).unwrap();
            let trainer = Trainer::new(TrainConfig::default());
            trainer
                .fit(
                    &mut model,
                    &poisoned.dataset.images,
                    &poisoned.dataset.labels,
                    &mut rng,
                )
                .unwrap();
            let acc = trainer
                .evaluate(&mut model, &test.images, &test.labels)
                .unwrap();
            let asr =
                attack_success_rate(&mut model, attack.as_ref(), &test, &cfg, &mut rng).unwrap();
            row(kind.name(), &[acc, asr]);
        }
        // Clean reference model.
        let data = SynthDataset::Cifar10.generate(40, 16, 78).unwrap();
        let (train, test) = data.split(0.8, &mut rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = build(arch, &spec, &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig::default());
        trainer
            .fit(&mut model, &train.images, &train.labels, &mut rng)
            .unwrap();
        let acc = trainer
            .evaluate(&mut model, &test.images, &test.labels)
            .unwrap();
        row("Clean", &[acc, 0.0]);
    }
}
