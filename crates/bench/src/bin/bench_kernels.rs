//! Kernel-layer benchmark and speedup gate (`BENCH_kernels.json`).
//!
//! Measures the packed, cache-blocked GEMM + batched-im2col kernel layer
//! (`bprom_tensor::kernels`) against the retained pre-kernel
//! implementations (`bprom_tensor::reference` — the *real* pre-PR hot
//! path, per-sample im2col allocations and scalar dot loops included):
//!
//! 1. **GEMM GFLOP/s** across the pipeline's real shapes — the ResNetMini
//!    shadow-training products (stem/block convs lowered to GEMM, dense
//!    head) in all three transpose flavours.
//! 2. **Conv-heavy shadow-training epoch**: the full conv + dense
//!    forward/backward kernel sequence of a ResNetMini epoch, timed
//!    end-to-end, packed vs reference.
//!
//! The epoch speedup is asserted **in-process**: floor
//! [`SPEEDUP_FLOOR`]× at one thread always; at `BPROM_THREADS` > 1 the
//! floor is enforced only when the host actually has that many cores
//! (`available_parallelism()`) — on oversubscribed hosts, where extra
//! threads can only time-slice one core, the leg instead asserts the
//! threaded run stays within 2× of the single-thread wall-clock. The CI
//! `kernels` job runs both `BPROM_THREADS` ∈ {1, 4} and independently
//! re-checks `speedup_1t` from `BENCH_kernels.json`. Set `BPROM_QUICK=1`
//! for fewer repetitions; the gate holds at either scale.

use bprom_bench::{header, quick, row};
use bprom_obs::{ToJson, Value};
use bprom_tensor::reference::{
    conv2d_backward_input_reference, conv2d_backward_weight_reference, conv2d_reference,
    matmul_reference,
};
use bprom_tensor::{conv2d, conv2d_backward_input, conv2d_backward_weight, Rng, Tensor};
use std::time::Instant;

/// Required single-thread speedup of the packed conv-epoch composite
/// over the pre-kernel reference path.
const SPEEDUP_FLOOR: f64 = 3.0;

/// ResNetMini conv layer shapes for 16×16 inputs, 10 classes
/// (`head_widths` → c1 = 8, c2 = 32): (in_ch, out_ch, kernel, stride,
/// pad, input side).
const CONV_LAYERS: [(usize, usize, usize, usize, usize, usize); 6] = [
    (3, 8, 3, 1, 1, 16),  // stem
    (8, 8, 3, 1, 1, 16),  // block1 conv a
    (8, 8, 3, 1, 1, 16),  // block1 conv b
    (8, 32, 3, 2, 1, 16), // block2 downsample
    (32, 32, 3, 1, 1, 8), // block2 conv b
    (8, 32, 1, 2, 0, 16), // block2 projection
];

const BATCH: usize = 32;

fn time_of(mut f: impl FnMut(), reps: usize) -> f64 {
    // One warmup rep, then the best of `reps` timed runs (robust to
    // scheduler noise; both paths get identical treatment).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// GFLOP/s of packed vs reference matmul on one shape, plus bit-equality
/// spot check.
fn gemm_shape(name: &str, m: usize, k: usize, n: usize, reps: usize, report: &mut Vec<Value>) {
    let mut rng = Rng::new(0xbeef ^ (m * 31 + k * 7 + n) as u64);
    let a = Tensor::randn(&[m, k], &mut rng);
    let b = Tensor::randn(&[k, n], &mut rng);
    assert_eq!(
        a.matmul(&b).unwrap().data(),
        matmul_reference(&a, &b).unwrap().data(),
        "packed GEMM must stay bit-identical to the reference ({name})"
    );
    let flops = (2 * m * k * n) as f64;
    let packed = time_of(
        || {
            std::hint::black_box(a.matmul(&b).unwrap());
        },
        reps,
    );
    let reference = time_of(
        || {
            std::hint::black_box(matmul_reference(&a, &b).unwrap());
        },
        reps,
    );
    let (gp, gr) = (flops / packed / 1e9, flops / reference / 1e9);
    row(name, &[gp as f32, gr as f32, (gp / gr) as f32]);
    report.push(Value::object(vec![
        ("shape", format!("{m}x{k}x{n}").to_json()),
        ("gflops_packed", gp.to_json()),
        ("gflops_reference", gr.to_json()),
        ("speedup", (gp / gr).to_json()),
    ]));
}

/// Pre-generated tensors for one conv layer: input batch, weight, and an
/// upstream gradient with the output shape. Data generation happens once,
/// outside the timed region, so the epoch numbers measure kernels only.
struct LayerData {
    input: Tensor,
    weight: Tensor,
    grad: Tensor,
    kernel: (usize, usize),
    stride: usize,
    pad: usize,
}

fn make_layers() -> Vec<LayerData> {
    let mut rng = Rng::new(42);
    CONV_LAYERS
        .iter()
        .map(|&(ci, co, k, s, p, side)| {
            let input = Tensor::randn(&[BATCH, ci, side, side], &mut rng);
            let weight = Tensor::randn(&[co, ci, k, k], &mut rng);
            let oh = (side + 2 * p - k) / s + 1;
            let grad = Tensor::randn(&[BATCH, co, oh, oh], &mut rng);
            LayerData {
                input,
                weight,
                grad,
                kernel: (k, k),
                stride: s,
                pad: p,
            }
        })
        .collect()
}

/// One full conv-epoch of kernel work (all ResNetMini conv layers,
/// forward + both backward directions, `batches` batches) on either the
/// packed or the reference path.
fn conv_epoch(layers: &[LayerData], packed: bool, batches: usize) {
    for _ in 0..batches {
        for l in layers {
            let (s, p) = (l.stride, l.pad);
            let (out, gw, gi) = if packed {
                (
                    conv2d(&l.input, &l.weight, s, p).unwrap(),
                    conv2d_backward_weight(&l.input, &l.grad, l.kernel, s, p).unwrap(),
                    conv2d_backward_input(&l.weight, &l.grad, l.input.shape(), s, p).unwrap(),
                )
            } else {
                (
                    conv2d_reference(&l.input, &l.weight, s, p).unwrap(),
                    conv2d_backward_weight_reference(&l.input, &l.grad, l.kernel, s, p).unwrap(),
                    conv2d_backward_input_reference(&l.weight, &l.grad, l.input.shape(), s, p)
                        .unwrap(),
                )
            };
            std::hint::black_box((out, gw, gi));
        }
    }
}

fn main() {
    let threads = std::env::var("BPROM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(bprom_par::thread_count);
    bprom_par::set_thread_count(threads.max(1));
    // Enough best-of rounds for both paths to shed scheduler noise on
    // shared-CPU runners; the ratio is gated, so its tails matter.
    let reps = if quick() { 5 } else { 9 };
    let batches = if quick() { 2 } else { 4 };

    header(
        "bprom-tensor packed GEMM (pipeline shapes)",
        &["shape", "GFLOP/s packed", "GFLOP/s reference", "speedup"],
    );
    let mut shapes = Vec::new();
    // Forward conv GEMMs ([o, k] x [k, batch*oh*ow]) for the ResNetMini
    // layers, the dense head, and a square sanity shape.
    for (name, m, k, n) in [
        ("stem_fwd", 8, 27, BATCH * 256),
        ("block1_fwd", 8, 72, BATCH * 256),
        ("block2_down_fwd", 32, 72, BATCH * 64),
        ("block2_fwd", 32, 288, BATCH * 64),
        ("bwd_weight", 32, 288, BATCH * 64), // [o, N] x [k, N]^T shape class
        ("dense_head", BATCH, 32, 10),
        ("square_256", 256, 256, 256),
    ] {
        gemm_shape(name, m, k, n, reps, &mut shapes);
    }

    header(
        "conv-heavy shadow-training epoch (ResNetMini kernel sequence)",
        &["path", "fwd_s", "bwd_w_s", "bwd_in_s"],
    );
    let layers = make_layers();
    // Per-direction breakdown at one thread (diagnostic, not gated).
    bprom_par::set_thread_count(1);
    for packed in [false, true] {
        let mut dir = [0.0f64; 3];
        for (d, slot) in dir.iter_mut().enumerate() {
            *slot = time_of(
                || {
                    for l in &layers {
                        let (s, p) = (l.stride, l.pad);
                        match (d, packed) {
                            (0, true) => drop(conv2d(&l.input, &l.weight, s, p).unwrap()),
                            (0, false) => {
                                drop(conv2d_reference(&l.input, &l.weight, s, p).unwrap())
                            }
                            (1, true) => drop(
                                conv2d_backward_weight(&l.input, &l.grad, l.kernel, s, p).unwrap(),
                            ),
                            (1, false) => drop(
                                conv2d_backward_weight_reference(&l.input, &l.grad, l.kernel, s, p)
                                    .unwrap(),
                            ),
                            (2, true) => drop(
                                conv2d_backward_input(&l.weight, &l.grad, l.input.shape(), s, p)
                                    .unwrap(),
                            ),
                            _ => drop(
                                conv2d_backward_input_reference(
                                    &l.weight,
                                    &l.grad,
                                    l.input.shape(),
                                    s,
                                    p,
                                )
                                .unwrap(),
                            ),
                        }
                    }
                },
                reps,
            );
        }
        let label = if packed {
            "packed/dir"
        } else {
            "reference/dir"
        };
        row(label, &[dir[0] as f32, dir[1] as f32, dir[2] as f32]);
    }

    // The gate compares single-threaded packed vs reference: the
    // reference is the sequential pre-PR code, so the 3x floor must hold
    // without the pool's help.
    let ref_s = time_of(|| conv_epoch(&layers, false, batches), reps);
    let packed_1t_s = time_of(|| conv_epoch(&layers, true, batches), reps);
    bprom_par::set_thread_count(threads.max(1));
    let packed_s = if threads > 1 {
        time_of(|| conv_epoch(&layers, true, batches), reps)
    } else {
        packed_1t_s
    };
    row("reference", &[ref_s as f32, 0.0, 0.0]);
    row("packed_t1", &[packed_1t_s as f32, 0.0, 0.0]);
    row(&format!("packed_t{threads}"), &[packed_s as f32, 0.0, 0.0]);

    let speedup_1t = ref_s / packed_1t_s.max(1e-12);
    let speedup = ref_s / packed_s.max(1e-12);
    println!("\nspeedup: {speedup_1t:.2}x single-thread, {speedup:.2}x at {threads} threads");
    assert!(
        speedup_1t >= SPEEDUP_FLOOR,
        "conv-epoch speedup {speedup_1t:.2}x below the {SPEEDUP_FLOOR}x floor"
    );
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    if threads > 1 {
        if cores >= threads {
            // Enough cores to actually run the threads: the threaded
            // epoch must hold the same floor (CI runners may not have
            // the headroom to scale much beyond it).
            assert!(
                speedup >= SPEEDUP_FLOOR,
                "conv-epoch speedup {speedup:.2}x at {threads} threads below the \
                 {SPEEDUP_FLOOR}x floor"
            );
        } else {
            // Oversubscribed host ({threads} workers time-slicing {cores}
            // core(s)): wall-clock cannot improve, so gate that the
            // dispatch overhead stays bounded instead.
            assert!(
                packed_s <= packed_1t_s * 2.0,
                "threaded conv-epoch {packed_s:.4}s more than 2x the single-thread \
                 {packed_1t_s:.4}s on a {cores}-core host"
            );
        }
    }

    let json = Value::object(vec![
        ("threads", (threads as f64).to_json()),
        ("host_cores", (cores as f64).to_json()),
        ("gemm_shapes", Value::Array(shapes)),
        (
            "conv_epoch",
            Value::object(vec![
                ("reference_s", ref_s.to_json()),
                ("packed_1t_s", packed_1t_s.to_json()),
                ("packed_s", packed_s.to_json()),
                ("speedup_1t", speedup_1t.to_json()),
                ("speedup", speedup.to_json()),
                ("floor", SPEEDUP_FLOOR.to_json()),
            ]),
        ),
    ])
    .to_pretty();
    match std::fs::write("BENCH_kernels.json", &json) {
        Ok(()) => println!("written -> BENCH_kernels.json"),
        Err(e) => eprintln!("BENCH_kernels.json write failed: {e}"),
    }
    bprom_par::set_thread_count(0);
}
