//! CI fixture for the explainable-verdict contract (`bprom-verdict`):
//! runs one small end-to-end audit — a {clean, BadNets} zoo where the
//! backdoored model answers through the hostile oracle stack plus an
//! evicting client-side cache — under the mode selected by `BPROM_MODE`,
//! lets `TelemetryGuard` emit `incident.json` through the audit sink,
//! then validates the artifact:
//!
//! - the emitted document satisfies the zero-dependency schema validator
//!   and is byte-identical to assembling the report in-process;
//! - the backdoored model's incident carries >= 3 distinct stable rule
//!   IDs; the clean model's incident is the empty-findings baseline;
//! - strict mode flags or quarantines the backdoored model, learning
//!   mode records the *identical* findings without enforcing (the
//!   no-verdict-flip property, checked against both modes in-process
//!   whatever `BPROM_MODE` says).
//!
//! Exits non-zero (panics) on any violation; CI runs it once per mode.

use bprom::{
    build_suspicious_zoo, evaluate_detector_via, Bprom, BpromConfig, CacheConfig, DetectionReport,
    ZooConfig,
};
use bprom_attacks::AttackKind;
use bprom_bench::TelemetryGuard;
use bprom_data::SynthDataset;
use bprom_faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_nn::TrainConfig;
use bprom_qcache::CachingOracle;
use bprom_tensor::Rng;
use bprom_verdict::{validate_incident, Action, Mode, RulePolicy};
use bprom_vp::PromptTrainConfig;
use std::cell::Cell;

/// The same audit recipe `tests/incident.rs` pins, at the same scale,
/// with the default rule policy: one harder-trained clean model behind a
/// plain oracle, one BadNets model behind transient faults + quantized
/// responses + retries + a 64-entry (evicting) memo cache.
fn run_audit(seed: u64) -> DetectionReport {
    let mut rng = Rng::new(seed);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    config.cache = CacheConfig::unbounded();
    let detector = Bprom::fit(&config, &mut rng).expect("detector fit");

    let mut clean_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    clean_cfg.clean = 1;
    clean_cfg.backdoored = 0;
    clean_cfg.samples_per_class = 40;
    clean_cfg.train = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let mut zoo = build_suspicious_zoo(&clean_cfg, &mut rng).expect("clean zoo");
    let mut bad_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    bad_cfg.clean = 0;
    bad_cfg.backdoored = 1;
    bad_cfg.samples_per_class = 20;
    bad_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    zoo.extend(build_suspicious_zoo(&bad_cfg, &mut rng).expect("bad zoo"));

    let audit_index = Cell::new(0usize);
    evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
        let i = audit_index.get();
        audit_index.set(i + 1);
        if i == 0 {
            detector.inspect(&oracle, rng)
        } else {
            let plan = Stack(vec![
                Box::new(Transient { rate: 0.25 }),
                Box::new(Quantize { decimals: 3 }),
            ]);
            let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            let memo = CachingOracle::new(retrying, CacheConfig::lru(64));
            detector.inspect(&memo, rng)
        }
    })
    .expect("evaluate")
}

fn main() {
    let mode = Mode::from_env_or(Mode::Strict);
    let policy = RulePolicy::default();
    let label = "incident_fixture";
    println!("running {} audit in {} mode...", label, mode.as_str());

    let report;
    {
        let _guard = TelemetryGuard::begin(label);
        report = run_audit(42);
    } // guard drop drains the sink and writes incident.json + telemetry.json

    // The emitted artifact must match assembling the same records
    // in-process, and must satisfy the schema validator.
    let dir = std::env::var("BPROM_TELEMETRY_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("incident.json");
    let emitted = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing emitted artifact {}: {e}", path.display()));
    let doc = bprom_obs::Value::parse(&emitted).expect("incident.json parses");
    validate_incident(&doc)
        .unwrap_or_else(|errs| panic!("emitted incident.json fails schema: {errs:?}"));
    let assembled = report.incident(label, &policy, mode);
    assert_eq!(
        emitted,
        assembled.to_json_string(),
        "emitted incident.json must match the in-process assembly"
    );
    println!("schema + emission check passed ({})", path.display());

    // Content contract: clean baseline empty, backdoored model explained
    // by at least three distinct stable rule IDs.
    let strict = report.incident(label, &policy, Mode::Strict);
    let learning = report.incident(label, &policy, Mode::Learning);
    assert_eq!(strict.audits, 2);
    let clean = &strict.incidents[0];
    let bad = &strict.incidents[1];
    assert!(
        clean.findings.is_empty() && clean.action == Action::None,
        "clean model must be the empty-findings baseline, got {clean:?}"
    );
    let rules: Vec<&str> = bad.findings.iter().map(|c| c.finding.rule.code()).collect();
    assert!(
        rules.len() >= 3,
        "backdoored model must raise >= 3 distinct rules, got {rules:?}"
    );
    assert!(
        matches!(bad.action, Action::Flag | Action::Quarantine),
        "strict mode must flag or quarantine, got {:?}",
        bad.action
    );
    println!(
        "strict leg: backdoored model raised {rules:?} -> {:?}",
        bad.action
    );

    // No verdict flip: learning mode records identical evidence and
    // never enforces.
    assert_eq!(
        learning.incidents[1].findings, bad.findings,
        "learning mode must not change the findings"
    );
    assert_eq!(learning.flagged + learning.quarantined, 0);
    assert_eq!(learning.incidents[1].action, Action::Record);
    println!("learning leg: identical findings, no enforcement (no verdict flip)");
    println!("incident fixture OK in {} mode", mode.as_str());
}
