//! Conclusion/limitation section: BPROM "struggles with all-to-all
//! backdoors, as their feature space distortion is more controllable by
//! the attacker". This binary reproduces the negative result: detection
//! AUROC on an All-to-All zoo vs the BadNets reference.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(99);
    let cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
    header(
        "Limitation — all-to-one vs all-to-all detection (CIFAR-10)",
        &["attack", "auroc", "f1", "zoo asr"],
    );
    for attack in [AttackKind::BadNets, AttackKind::AllToAll] {
        let zoo = build_suspicious_zoo(&zoo_config(SynthDataset::Cifar10, attack), &mut rng)
            .expect("zoo");
        let asr = zoo
            .iter()
            .filter(|m| m.backdoored)
            .map(|m| m.asr)
            .sum::<f32>()
            / zoo.iter().filter(|m| m.backdoored).count().max(1) as f32;
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(attack.name(), &[report.auroc, report.f1, asr]);
    }
}
