//! Checkpointing overhead benchmark: times CMA-ES prompt learning bare
//! and with per-generation atomic snapshots (`train_prompt_cmaes_ckpt`
//! against a `SnapshotStore`), and writes `BENCH_ckpt.json` with the
//! wall-clock numbers, the per-generation snapshot cost, and the
//! snapshot payload size. The acceptance target is snapshot overhead
//! under 5 % of per-generation CMA-ES wall-clock.

use bprom_bench::{header, quick, row, ScopedTempDir};
use bprom_ckpt::SnapshotStore;
use bprom_data::SynthDataset;
use bprom_nn::models::{mlp, ModelSpec};
use bprom_obs::{ToJson, Value};
use bprom_tensor::Rng;
use bprom_vp::{
    train_prompt_cmaes, train_prompt_cmaes_ckpt, CmaesCheckpoint, LabelMap, PromptTrainConfig,
    QueryOracle, VisualPrompt,
};
use std::time::Instant;

fn generations() -> usize {
    if quick() {
        10
    } else {
        25
    }
}

fn cmaes_config() -> PromptTrainConfig {
    PromptTrainConfig {
        cmaes_generations: generations(),
        cmaes_population: 12,
        ..PromptTrainConfig::default()
    }
}

fn oracle() -> QueryOracle {
    let mut rng = Rng::new(100);
    let model = mlp(&ModelSpec::new(3, 16, 10), &mut rng).expect("model");
    QueryOracle::new(model, 10)
}

/// One full CMA-ES prompt-learning run, optionally snapshotting every
/// generation; returns wall-clock seconds.
fn time_cmaes(ckpt: Option<CmaesCheckpoint<'_>>) -> f64 {
    let oracle = oracle();
    let mut rng = Rng::new(200);
    let target = SynthDataset::Stl10.generate(10, 16, 9).expect("dataset");
    let map = LabelMap::identity(10, 10).expect("map");
    let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).expect("prompt");
    let t0 = Instant::now();
    match ckpt {
        Some(ckpt) => {
            train_prompt_cmaes_ckpt(
                &oracle,
                &mut prompt,
                &target.images,
                &target.labels,
                &map,
                &cmaes_config(),
                &mut rng,
                Some(ckpt),
            )
            .expect("cmaes ckpt");
        }
        None => {
            train_prompt_cmaes(
                &oracle,
                &mut prompt,
                &target.images,
                &target.labels,
                &map,
                &cmaes_config(),
                &mut rng,
            )
            .expect("cmaes");
        }
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    header(
        "bprom-ckpt snapshot overhead (CMA-ES prompt learning)",
        &["mode", "secs", "per_gen_ms"],
    );
    let gens = generations() as f64;

    let bare_s = time_cmaes(None);
    row("bare", &[bare_s as f32, (bare_s / gens * 1e3) as f32]);

    let dir = ScopedTempDir::new("bprom-bench-ckpt").expect("scratch dir");
    let store = SnapshotStore::open(dir.path()).expect("snapshot store");
    let ckpt_s = time_cmaes(Some(CmaesCheckpoint {
        store: &store,
        name: "bench",
    }));
    row("ckpt", &[ckpt_s as f32, (ckpt_s / gens * 1e3) as f32]);

    let snapshot_bytes = store
        .latest_path("bench")
        .and_then(|p| std::fs::metadata(p).ok())
        .map(|m| m.len())
        .unwrap_or(0);
    drop(dir);

    let overhead = ckpt_s / bare_s.max(1e-9) - 1.0;
    let per_snapshot_ms = (ckpt_s - bare_s).max(0.0) / gens * 1e3;
    println!(
        "\nsnapshot overhead: {:.2} % of CMA-ES wall-clock ({per_snapshot_ms:.3} ms per \
         generation, {snapshot_bytes} bytes per snapshot; target < 5 %)",
        overhead * 100.0
    );

    let json = Value::object(vec![
        ("bare_s", bare_s.to_json()),
        ("ckpt_s", ckpt_s.to_json()),
        ("overhead_frac", overhead.to_json()),
        ("generations", (gens as u64).to_json()),
        ("per_snapshot_ms", per_snapshot_ms.to_json()),
        ("snapshot_bytes", snapshot_bytes.to_json()),
    ])
    .to_pretty();
    match std::fs::write("BENCH_ckpt.json", &json) {
        Ok(()) => println!("written -> BENCH_ckpt.json"),
        Err(e) => eprintln!("BENCH_ckpt.json write failed: {e}"),
    }
}
