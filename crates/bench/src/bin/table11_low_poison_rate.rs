//! Table 11: adaptive attack via very low poison rates — AUROC and ASR of
//! BadNets suspicious models as the poison rate shrinks.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::{AttackKind, PoisonConfig};
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(11);
    let cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
    header(
        "Table 11 — low poison rates (CIFAR-10, BadNets)",
        &["rate", "auroc", "asr"],
    );
    // The paper sweeps 0.2%..10% of 50k (100..5000 poisons); our training
    // sets are ~160 samples, so the sweep keeps the absolute poison counts
    // in a comparable effective range.
    for rate in [0.03f32, 0.05, 0.1, 0.2] {
        let mut zoo_cfg = zoo_config(SynthDataset::Cifar10, AttackKind::BadNets);
        zoo_cfg.poison = Some(PoisonConfig::new(rate, 0.0, 0));
        let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
        let asr = zoo
            .iter()
            .filter(|m| m.backdoored)
            .map(|m| m.asr)
            .sum::<f32>()
            / zoo.iter().filter(|m| m.backdoored).count().max(1) as f32;
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(&format!("{:.0}%", rate * 100.0), &[report.auroc, asr]);
    }
}
