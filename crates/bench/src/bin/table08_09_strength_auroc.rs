//! Tables 8 & 9: ASR and detection AUROC across trigger sizes and poison
//! rates (Blend family) — detection stays stable as attacks strengthen.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::{AttackKind, PoisonConfig};
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(89);
    let cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
    header(
        "Table 9 — ASR and AUROC vs poison rate (CIFAR-10, Blend)",
        &["rate", "asr", "auroc"],
    );
    for rate in [0.05f32, 0.1, 0.2] {
        let mut zoo_cfg = zoo_config(SynthDataset::Cifar10, AttackKind::Blend);
        zoo_cfg.poison = Some(PoisonConfig::new(rate, 0.0, 0));
        let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
        let asr = zoo
            .iter()
            .filter(|m| m.backdoored)
            .map(|m| m.asr)
            .sum::<f32>()
            / zoo.iter().filter(|m| m.backdoored).count().max(1) as f32;
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(&format!("{:.0}%", rate * 100.0), &[asr, report.auroc]);
    }
    // Trigger size sweep (Table 8) reuses the patch-restricted Blend via
    // AdapBlend::with_patch_size inside the zoo's attack default; sizes are
    // emulated by the full-image vs patch variants at fixed rate.
    header(
        "Table 8 — ASR and AUROC vs trigger footprint (CIFAR-10, Adap-Patch pieces)",
        &["attack", "asr", "auroc"],
    );
    for attack in [
        AttackKind::AdapPatch,
        AttackKind::AdapBlend,
        AttackKind::Blend,
    ] {
        let zoo = build_suspicious_zoo(&zoo_config(SynthDataset::Cifar10, attack), &mut rng)
            .expect("zoo");
        let asr = zoo
            .iter()
            .filter(|m| m.backdoored)
            .map(|m| m.asr)
            .sum::<f32>()
            / zoo.iter().filter(|m| m.backdoored).count().max(1) as f32;
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(attack.name(), &[asr, report.auroc]);
    }
}
