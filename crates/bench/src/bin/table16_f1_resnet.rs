//! Table 16: F1 scores (BPROM rows) at 10/5% reserved-set sizes.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config, TelemetryGuard};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let _telemetry = TelemetryGuard::begin("table16_f1_resnet");
    let mut rng = Rng::new(16);
    for fraction in [0.1f32, 0.05] {
        header(
            &format!("Table 16 — BPROM({:.0}%) F1 on CIFAR-10", fraction * 100.0),
            &["attack", "f1", "auroc"],
        );
        let mut cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.ds_fraction = fraction;
        let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
        for attack in [
            AttackKind::BadNets,
            AttackKind::Blend,
            AttackKind::Trojan,
            AttackKind::WaNet,
        ] {
            let zoo = build_suspicious_zoo(&zoo_config(SynthDataset::Cifar10, attack), &mut rng)
                .expect("zoo");
            let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
            row(attack.name(), &[report.f1, report.auroc]);
        }
    }
}
