//! Table 12: clean-label adaptive attacks (SIG, LC) — AUROC and ASR.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(12);
    let cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
    header(
        "Table 12 — clean-label attacks (CIFAR-10)",
        &["attack", "auroc", "asr"],
    );
    for attack in [AttackKind::Sig, AttackKind::LabelConsistent] {
        let zoo = build_suspicious_zoo(&zoo_config(SynthDataset::Cifar10, attack), &mut rng)
            .expect("zoo");
        let asr = zoo
            .iter()
            .filter(|m| m.backdoored)
            .map(|m| m.asr)
            .sum::<f32>()
            / zoo.iter().filter(|m| m.backdoored).count().max(1) as f32;
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(attack.name(), &[report.auroc, asr]);
    }
}
