//! Table 10: structural mismatch — ResNet shadow models inspecting
//! MobileNet suspicious models.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_nn::models::Architecture;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(10);
    let cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    let detector = Bprom::fit(&cfg, &mut rng).expect("fit"); // ResNetMini shadows
    header(
        "Table 10 — ResNet shadows vs MobileNet suspicious models",
        &["attack", "f1", "auroc"],
    );
    for attack in [
        AttackKind::WaNet,
        AttackKind::AdapBlend,
        AttackKind::AdapPatch,
    ] {
        let mut zoo_cfg = zoo_config(SynthDataset::Cifar10, attack);
        zoo_cfg.architecture = Architecture::MobileNetMini;
        let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(attack.name(), &[report.f1, report.auroc]);
    }
}
