//! Backbone-scenario shootout: BPROM vs a gradient-free trigger-inversion
//! baseline at identical query budgets, on a zoo of prompted-backbone
//! composites (clean and BadNets-poisoned backbones adapted downstream on
//! clean data — the BadBone threat model).
//!
//! Both detectors audit the *same* deterministic zoo under the *same*
//! per-model query budget (images submitted): BPROM's bill comes from its
//! `InspectBudget`, and the inversion baseline's CMA-ES search is capped
//! at BPROM's mean per-model spend through its exact generation-granular
//! budget fence. Results land in `BENCH_backbone.json`; CI gates
//! `bprom.auroc >= inversion.auroc - 0.05` at equal budgets, which this
//! binary also asserts in-process.
//!
//! `BPROM_QUICK=1` shrinks shadow/zoo counts as everywhere else.

use bprom::Bprom;
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, quick, row, TelemetryGuard};
use bprom_data::SynthDataset;
use bprom_defenses::trigger_inversion::{invert_trigger, TriggerInversionConfig};
use bprom_metrics::auroc;
use bprom_obs::{ToJson, Value};
use bprom_scenarios::{build_backbone_zoo, evaluate_backbone_zoo, BackboneScenarioConfig};
use bprom_tensor::Rng;
use bprom_vp::{BlackBoxModel, PromptTrainConfig};

const ZOO_SEED: u64 = 42;

/// Bench-scale backbone-scenario zoo (paper scale would be 30 + 30).
fn backbone_zoo_config() -> BackboneScenarioConfig {
    let mut cfg = BackboneScenarioConfig::new(
        SynthDataset::Cifar10,
        SynthDataset::Stl10,
        AttackKind::BadNets,
    );
    let n = if quick() { 3 } else { 5 };
    cfg.clean = n;
    cfg.backdoored = n;
    cfg.samples_per_class = 30;
    cfg.downstream_samples_per_class = 20;
    cfg.prompt = PromptTrainConfig {
        epochs: 5,
        ..PromptTrainConfig::default()
    };
    cfg
}

fn main() {
    let _telemetry = TelemetryGuard::begin("bench_backbone");

    // --- BPROM leg -------------------------------------------------------
    let mut rng = Rng::new(ZOO_SEED);
    let cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    let detector = Bprom::fit(&cfg, &mut rng).expect("detector fit");
    // Both legs audit a bit-identical zoo: clone the stream position and
    // rebuild the zoo for the inversion leg instead of sharing (the BPROM
    // evaluation consumes its copy).
    let zoo_rng = rng.clone();
    let zoo = build_backbone_zoo(&backbone_zoo_config(), &mut rng).expect("backbone zoo");
    let labels: Vec<bool> = zoo.iter().map(|s| s.backdoored).collect();
    let report = evaluate_backbone_zoo(&detector, zoo, &mut rng).expect("bprom eval");
    let b013_audits = report
        .audits
        .iter()
        .filter(|a| a.findings.iter().any(|f| f.rule.code() == "B013"))
        .count();
    assert_eq!(report.scenario, "backbone");
    assert!(
        report
            .audits
            .iter()
            .all(|a| a.scenario == "backbone" && a.signals.clean_downstream_training),
        "backbone evaluation must attest clean downstream training"
    );

    // --- Trigger-inversion leg at the same per-model budget --------------
    // The zoo is rebuilt bit-identically from the cloned stream position,
    // then each composite gets exactly BPROM's mean per-model image
    // budget, split evenly across candidate target classes with the exact
    // budget fence as a backstop.
    let mut rng = zoo_rng;
    let zoo = build_backbone_zoo(&backbone_zoo_config(), &mut rng).expect("backbone zoo");
    let probes = SynthDataset::Stl10
        .generate(1, backbone_zoo_config().downstream_size, 7)
        .expect("probe batch")
        .images;
    let n_probes = probes.shape()[0];
    let budget = report.mean_queries as u64;
    let base = TriggerInversionConfig::default();
    let per_generation = (base.population * n_probes) as u64;
    let num_classes = SynthDataset::Stl10.num_classes();
    let inversion_cfg = TriggerInversionConfig {
        generations: ((budget / (num_classes as u64 * per_generation)).max(1)) as usize,
        query_budget: Some(budget),
        ..base
    };
    let mut scores = Vec::with_capacity(zoo.len());
    let mut inversion_queries = 0u64;
    let mut exhausted = 0u64;
    for system in &zoo {
        let oracle: &dyn BlackBoxModel = &system.system;
        let inv = invert_trigger(oracle, &probes, &inversion_cfg, &mut Rng::new(11))
            .expect("trigger inversion");
        assert!(
            inv.queries <= budget,
            "inversion exceeded the shared budget"
        );
        inversion_queries += inv.queries;
        exhausted += u64::from(inv.budget_exhausted);
        scores.push(inv.anomaly);
    }
    let inversion_auroc = auroc(&scores, &labels).expect("inversion auroc");

    header(
        "Backbone shootout (BadNets backbones, equal query budgets)",
        &["detector", "auroc", "mean_queries", "budget"],
    );
    row("bprom", &[report.auroc, report.mean_queries, budget as f32]);
    row(
        "inversion",
        &[
            inversion_auroc,
            inversion_queries as f32 / zoo.len() as f32,
            budget as f32,
        ],
    );
    println!(
        "\nB013 (backbone-implanted backdoor suspected) raised on {b013_audits} of {} audits",
        report.audits.len()
    );

    // The CI gate, asserted in-process too: at identical query budgets
    // BPROM must not trail the inversion baseline by more than 0.05 AUROC.
    assert!(
        report.auroc >= inversion_auroc - 0.05,
        "BPROM AUROC {} trails inversion {} by more than 0.05 at equal budgets",
        report.auroc,
        inversion_auroc
    );

    let json = Value::object(vec![
        ("quick", quick().to_json()),
        ("query_budget_per_model", budget.to_json()),
        (
            "bprom",
            Value::object(vec![
                ("auroc", report.auroc.to_json()),
                ("f1", report.f1.to_json()),
                ("mean_queries", report.mean_queries.to_json()),
                ("total_queries", report.total_queries.to_json()),
                ("b013_audits", (b013_audits as u64).to_json()),
                ("audits", (report.audits.len() as u64).to_json()),
            ]),
        ),
        (
            "inversion",
            Value::object(vec![
                ("auroc", inversion_auroc.to_json()),
                (
                    "mean_queries",
                    (inversion_queries as f32 / labels.len() as f32).to_json(),
                ),
                (
                    "generations_per_class",
                    (inversion_cfg.generations as u64).to_json(),
                ),
                ("budget_exhausted_models", exhausted.to_json()),
            ]),
        ),
        ("auroc_gap", (report.auroc - inversion_auroc).to_json()),
    ])
    .to_pretty();
    match std::fs::write("BENCH_backbone.json", &json) {
        Ok(()) => println!("written -> BENCH_backbone.json"),
        Err(e) => eprintln!("BENCH_backbone.json write failed: {e}"),
    }
}
