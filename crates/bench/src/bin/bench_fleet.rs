//! Fleet-audit benchmark: measures what the shadow-zoo registry buys a
//! marketplace operator. Leg A pins the worker pool to one thread and
//! times (a) one detector fit, (b) the eight per-model inspections, and
//! (c) the engine draining the same eight-model queue end to end — the
//! amortization gate requires the fleet run to cost at most 1.25× the
//! "one fit + N inspections" budget (versus N fits for N naive runs).
//! Leg B re-screens the same fleet (each model audited twice with shared
//! per-model caches) and requires the fleet-mode cache hit rate to
//! materially exceed the <1 % single-run baseline recorded in
//! `BENCH_qcache.json`. Writes `BENCH_fleet.json`; CI re-checks both
//! gates from the JSON.

use bprom::{build_suspicious_zoo, Bprom, BpromConfig, SuspiciousModel, ZooConfig};
use bprom_attacks::AttackKind;
use bprom_audit::{AuditEngine, AuditRequest, DetectorSpec, ShadowZooRegistry};
use bprom_bench::{header, quick, row};
use bprom_data::SynthDataset;
use bprom_nn::TrainConfig;
use bprom_obs::{ToJson, Value};
use bprom_qcache::CachingOracle;
use bprom_tensor::Rng;
use bprom_vp::{PromptTrainConfig, QueryOracle};
use std::time::Instant;

const N_MODELS: usize = 8;
const FIT_SEED: u64 = 7;
const ZOO_SEED: u64 = 99;

fn fleet_config() -> BpromConfig {
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    if quick() {
        config.clean_shadows = 2;
        config.backdoor_shadows = 2;
        config.test_samples_per_class = 20;
        config.target_samples_per_class = 10;
        config.train = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        config.prompt = PromptTrainConfig {
            epochs: 2,
            cmaes_generations: 4,
            cmaes_population: 6,
            ..PromptTrainConfig::default()
        };
    } else {
        config.clean_shadows = 4;
        config.backdoor_shadows = 4;
        config.prompt.cmaes_generations = 10;
    }
    config
}

/// The audited fleet, rebuilt bit-identically on every call (training is
/// deterministic in `ZOO_SEED`), since models are consumed by queues.
fn marketplace() -> Vec<SuspiciousModel> {
    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::Blend);
    zoo_cfg.clean = N_MODELS / 2;
    zoo_cfg.backdoored = N_MODELS / 2;
    if quick() {
        zoo_cfg.samples_per_class = 20;
        zoo_cfg.train = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
    }
    build_suspicious_zoo(&zoo_cfg, &mut Rng::new(ZOO_SEED)).expect("zoo")
}

fn queue(spec: &DetectorSpec) -> Vec<AuditRequest> {
    marketplace()
        .into_iter()
        .enumerate()
        .map(|(i, suspicious)| {
            AuditRequest::from_suspicious(
                format!("m{i}"),
                suspicious,
                10,
                spec.clone(),
                1000 + i as u64,
            )
        })
        .collect()
}

fn aggregate_hit_rate(outcomes: &[bprom_audit::AuditOutcome]) -> f64 {
    let hits: u64 = outcomes.iter().map(|o| o.record.signals.cache_hits).sum();
    let misses: u64 = outcomes.iter().map(|o| o.record.signals.cache_misses).sum();
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// The single-run hit-rate baseline from `BENCH_qcache.json`, falling
/// back to the committed measurement when the file is absent.
fn single_run_baseline() -> f64 {
    const COMMITTED: f64 = 0.008191126279863481;
    let Ok(text) = std::fs::read_to_string("BENCH_qcache.json") else {
        return COMMITTED;
    };
    let Ok(Value::Object(fields)) = Value::parse(&text) else {
        return COMMITTED;
    };
    fields
        .iter()
        .find(|(k, _)| k == "hit_rate")
        .and_then(|(_, v)| match v {
            Value::Num(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(COMMITTED)
}

fn main() {
    header(
        "bprom-audit: fleet amortization & fleet-mode cache payoff",
        &["leg", "value"],
    );
    let config = fleet_config();
    let spec = DetectorSpec::new(config.clone(), FIT_SEED);

    // ---- Leg A: amortization, one thread so the comparison is apples
    // to apples (the engine's concurrency would otherwise hide any
    // overhead the gate is supposed to bound).
    bprom_par::set_thread_count(1);
    let t0 = Instant::now();
    let detector = Bprom::fit(&config, &mut Rng::new(FIT_SEED)).expect("fit");
    let fit_s = t0.elapsed().as_secs_f64();

    let mut inspect_total_s = 0.0;
    for (i, suspicious) in marketplace().into_iter().enumerate() {
        let oracle = CachingOracle::new(QueryOracle::new(suspicious.model, 10), config.cache);
        let t = Instant::now();
        detector
            .inspect(&oracle, &mut Rng::new(1000 + i as u64))
            .expect("inspect");
        inspect_total_s += t.elapsed().as_secs_f64();
    }

    let engine = AuditEngine::new("bench-fleet", ShadowZooRegistry::in_memory());
    let fleet_queue = queue(&spec);
    let t = Instant::now();
    let fleet = engine.run(fleet_queue).expect("fleet");
    let fleet_s = t.elapsed().as_secs_f64();
    bprom_par::set_thread_count(0);
    assert_eq!(fleet.registry.builds, 1, "one fit serves the fleet");

    let budget_s = fit_s + inspect_total_s;
    let overhead_frac = fleet_s / budget_s.max(1e-9) - 1.0;
    let naive_s = N_MODELS as f64 * fit_s + inspect_total_s;
    let amortization_ratio = naive_s / fleet_s.max(1e-9);
    row("fit_s", &[fit_s as f32]);
    row("inspect_total_s", &[inspect_total_s as f32]);
    row("budget_s", &[budget_s as f32]);
    row("fleet_s", &[fleet_s as f32]);
    row("overhead_frac", &[overhead_frac as f32]);
    row("amortization_ratio", &[amortization_ratio as f32]);
    println!(
        "  {N_MODELS}-model fleet: {fleet_s:.2}s vs {budget_s:.2}s budget \
         (1 fit + {N_MODELS} inspections; gate <= 1.25x), \
         {amortization_ratio:.2}x cheaper than {N_MODELS} naive runs"
    );
    assert!(
        fleet_s <= 1.25 * budget_s,
        "amortization gate: fleet {fleet_s:.3}s > 1.25 x budget {budget_s:.3}s"
    );

    // Steady state at the default thread count: the registry is warm, so
    // this is the sustained screening throughput a long-running engine
    // delivers.
    let steady_queue = queue(&spec);
    let t = Instant::now();
    let steady = engine.run(steady_queue).expect("steady fleet");
    let steady_s = t.elapsed().as_secs_f64();
    assert_eq!(steady.registry.builds, 1, "warm registry: still one fit");
    let models_per_hour = N_MODELS as f64 * 3600.0 / steady_s.max(1e-9);
    row("steady_s", &[steady_s as f32]);
    row("models_per_hour", &[models_per_hour as f32]);

    // ---- Leg B: fleet-mode cache payoff. Re-screening the fleet (each
    // model audited twice, per-model caches shared across same-model
    // audits) is where the PR 5 query cache finally earns its keep: the
    // second audit of each model replays content the first already paid
    // for.
    let rescreen = AuditEngine::new("bench-fleet-rescreen", ShadowZooRegistry::in_memory())
        .share_model_caches(true);
    let mut double_queue = queue(&spec);
    double_queue.extend(queue(&spec).into_iter().map(|mut request| {
        request.label.push_str("-rescreen");
        request
    }));
    let refleet = rescreen.run(double_queue).expect("rescreen fleet");
    assert_eq!(refleet.len(), 2 * N_MODELS);
    let single_pass_hit_rate = aggregate_hit_rate(&refleet.outcomes[..N_MODELS]);
    let re_audit_hit_rate = aggregate_hit_rate(&refleet.outcomes[N_MODELS..]);
    let fleet_hit_rate = refleet.cache_hit_rate();
    let baseline = single_run_baseline();
    row("single_pass_hit_rate", &[single_pass_hit_rate as f32]);
    row("re_audit_hit_rate", &[re_audit_hit_rate as f32]);
    row("fleet_hit_rate", &[fleet_hit_rate as f32]);
    println!(
        "  re-screen: {:.1}% fleet hit rate vs {:.2}% single-run baseline \
         (re-audits alone: {:.1}%)",
        100.0 * fleet_hit_rate,
        100.0 * baseline,
        100.0 * re_audit_hit_rate,
    );
    assert!(
        fleet_hit_rate >= 0.25 && fleet_hit_rate > 10.0 * baseline,
        "fleet-mode hit rate {fleet_hit_rate:.4} must materially exceed \
         the single-run baseline {baseline:.4}"
    );
    assert!(
        re_audit_hit_rate > 0.9,
        "a same-seed re-audit should replay from cache, got {re_audit_hit_rate:.4}"
    );

    let json = Value::object(vec![
        (
            "note",
            Value::Str(
                "Leg A runs single-threaded: fleet_s covers the engine \
                 draining an 8-model queue with one shared registry fit, \
                 budget_s is the measured cost of 1 fit + 8 standalone \
                 inspections, and naive_s is what 8 independent runs \
                 (8 fits) would pay. Leg B re-screens the fleet with \
                 shared per-model caches; the single-run hit-rate \
                 baseline comes from BENCH_qcache.json."
                    .to_string(),
            ),
        ),
        ("n_models", (N_MODELS as u64).to_json()),
        ("fit_s", fit_s.to_json()),
        ("inspect_total_s", inspect_total_s.to_json()),
        ("budget_s", budget_s.to_json()),
        ("fleet_s", fleet_s.to_json()),
        ("overhead_frac", overhead_frac.to_json()),
        ("naive_s", naive_s.to_json()),
        ("amortization_ratio", amortization_ratio.to_json()),
        ("steady_s", steady_s.to_json()),
        ("models_per_hour", models_per_hour.to_json()),
        ("single_pass_hit_rate", single_pass_hit_rate.to_json()),
        ("re_audit_hit_rate", re_audit_hit_rate.to_json()),
        ("fleet_hit_rate", fleet_hit_rate.to_json()),
        ("single_run_baseline_hit_rate", baseline.to_json()),
    ])
    .to_pretty();
    match std::fs::write("BENCH_fleet.json", &json) {
        Ok(()) => println!("written -> BENCH_fleet.json"),
        Err(e) => eprintln!("BENCH_fleet.json write failed: {e}"),
    }
}
