//! Tables 17/18: BPROM with MobileNet shadow AND suspicious models.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_nn::models::Architecture;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(17);
    header(
        "Tables 17/18 — BPROM(10%) on MobileNetMini (CIFAR-10)",
        &["attack", "auroc", "f1"],
    );
    let mut cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    cfg.architecture = Architecture::MobileNetMini;
    let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
    for attack in [
        AttackKind::BadNets,
        AttackKind::Blend,
        AttackKind::Trojan,
        AttackKind::Dynamic,
    ] {
        let mut zoo_cfg = zoo_config(SynthDataset::Cifar10, attack);
        zoo_cfg.architecture = Architecture::MobileNetMini;
        let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(attack.name(), &[report.auroc, report.f1]);
    }
}
