//! Table 6 (Tiny-ImageNet) and Table 26 (ImageNet): BPROM AUROC on the
//! larger synthetic stand-ins.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, quick, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(6);
    let attacks = if quick() {
        vec![AttackKind::BadNets, AttackKind::Trojan]
    } else {
        vec![
            AttackKind::BadNets,
            AttackKind::Trojan,
            AttackKind::AdapBlend,
            AttackKind::AdapPatch,
        ]
    };
    for source in [SynthDataset::TinyImageNet, SynthDataset::ImageNet] {
        header(
            &format!("Tables 6/26 — BPROM(10%) AUROC on {source}"),
            &["attack", "auroc", "f1"],
        );
        let cfg = detector_config(source, SynthDataset::Stl10);
        let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
        for &attack in &attacks {
            let zoo = build_suspicious_zoo(&zoo_config(source, attack), &mut rng).expect("zoo");
            let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
            row(attack.name(), &[report.auroc, report.f1]);
        }
    }
}
