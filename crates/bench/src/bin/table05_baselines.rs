//! Table 5 (baseline rows): the model-level baselines — MNTD, MM-BD and
//! Neural Cleanse — on the same suspicious-model zoos BPROM is scored on.
//! (Input- and dataset-level baselines run in their natural scopes via
//! `table01_input_level_drop` and the defense unit tests.)

use bprom::build_suspicious_zoo;
use bprom_attacks::AttackKind;
use bprom_bench::{header, quick, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_defenses::model_level::{mmbd_score, MntdDetector};
use bprom_defenses::neural_cleanse::neural_cleanse;
use bprom_metrics::auroc;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(55);
    let source = SynthDataset::Cifar10;
    // MNTD trains its own multi-attack shadow pool on the reserved set.
    let source_test = source.generate(150, 16, rng.next_u64()).unwrap();
    let ds = source_test.subsample(0.1, &mut rng).unwrap();
    let n_each = if quick() { 3 } else { 6 };
    let mntd = MntdDetector::fit(
        &ds,
        bprom_nn::models::Architecture::ResNetMini,
        n_each,
        &[AttackKind::BadNets, AttackKind::Blend, AttackKind::Trojan],
        16,
        &mut rng,
    )
    .expect("mntd fit");

    let attacks = if quick() {
        vec![AttackKind::BadNets, AttackKind::WaNet]
    } else {
        vec![
            AttackKind::BadNets,
            AttackKind::Blend,
            AttackKind::WaNet,
            AttackKind::AdapBlend,
        ]
    };
    header(
        "Table 5 baselines — model-level defenses (CIFAR-10)",
        &["attack", "MNTD", "MM-BD", "NeuralCleanse"],
    );
    for attack in attacks {
        let zoo = build_suspicious_zoo(&zoo_config(source, attack), &mut rng).expect("zoo");
        let labels: Vec<bool> = zoo.iter().map(|m| m.backdoored).collect();
        let mut mntd_scores = Vec::new();
        let mut mmbd_scores = Vec::new();
        let mut nc_scores = Vec::new();
        let probe_imgs = ds.subsample(0.2, &mut rng).unwrap().images;
        for mut m in zoo {
            mntd_scores.push(mntd.score(&mut m.model).expect("mntd"));
            mmbd_scores.push(mmbd_score(&mut m.model, &[3, 16, 16], 10, &mut rng).expect("mmbd"));
            nc_scores.push(
                neural_cleanse(&mut m.model, &probe_imgs, 10, 30, 0.02)
                    .expect("nc")
                    .anomaly,
            );
        }
        row(
            attack.name(),
            &[
                auroc(&mntd_scores, &labels).unwrap(),
                auroc(&mmbd_scores, &labels).unwrap(),
                auroc(&nc_scores, &labels).unwrap(),
            ],
        );
    }
}
