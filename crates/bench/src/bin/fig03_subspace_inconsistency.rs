//! Figure 3 / Section C: class subspace inconsistency — prompted accuracy
//! of clean vs backdoored source models (CIFAR-10 source, STL-10 target).

use bprom_attacks::{poison_dataset, AttackKind};
use bprom_bench::{header, quick, row, TelemetryGuard};
use bprom_data::SynthDataset;
use bprom_nn::models::{resnet_mini, ModelSpec};
use bprom_nn::{TrainConfig, Trainer};
use bprom_tensor::Rng;
use bprom_vp::{
    prompted_accuracy, train_prompt_backprop, LabelMap, PromptTrainConfig, VisualPrompt,
};

fn main() {
    let _telemetry = TelemetryGuard::begin("fig03_subspace_inconsistency");
    let mut rng = Rng::new(3);
    let spec = ModelSpec::new(3, 16, 10);
    let trainer = Trainer::new(TrainConfig::default());
    let map = LabelMap::identity(10, 10).unwrap();
    // Measured at the detector's own prompting operating point.
    let prompt_cfg = PromptTrainConfig::default();
    let target = SynthDataset::Stl10.generate(25, 16, 99).unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
    let seeds: Vec<u64> = if quick() {
        vec![1, 2, 3]
    } else {
        (1..=6).collect()
    };
    // Shadow-regime source models (the detector's operating point).
    let per_class = 15usize;
    header(
        "Figure 3 — prompted accuracy, clean vs backdoored source models",
        &["model", "mean", "runs..."],
    );
    let mut clean_accs = Vec::new();
    let mut bd_accs = Vec::new();
    for &seed in &seeds {
        let source = SynthDataset::Cifar10.generate(per_class, 16, seed).unwrap();
        let mut clean = resnet_mini(&spec, &mut rng).unwrap();
        trainer
            .fit(&mut clean, &source.images, &source.labels, &mut rng)
            .unwrap();
        let mut p = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        train_prompt_backprop(
            &mut clean,
            &mut p,
            &t_train.images,
            &t_train.labels,
            &map,
            &prompt_cfg,
            &mut rng,
        )
        .unwrap();
        clean_accs
            .push(prompted_accuracy(&mut clean, &p, &t_test.images, &t_test.labels, &map).unwrap());

        let kind = AttackKind::BadNets;
        let attack = kind.build(16, &mut rng).unwrap();
        let poisoned =
            poison_dataset(&source, attack.as_ref(), &kind.default_config(0), &mut rng).unwrap();
        let mut bd = resnet_mini(&spec, &mut rng).unwrap();
        trainer
            .fit(
                &mut bd,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                &mut rng,
            )
            .unwrap();
        let mut p2 = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        train_prompt_backprop(
            &mut bd,
            &mut p2,
            &t_train.images,
            &t_train.labels,
            &map,
            &prompt_cfg,
            &mut rng,
        )
        .unwrap();
        bd_accs
            .push(prompted_accuracy(&mut bd, &p2, &t_test.images, &t_test.labels, &map).unwrap());
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    let mut c = vec![mean(&clean_accs)];
    c.extend_from_slice(&clean_accs);
    let mut b = vec![mean(&bd_accs)];
    b.extend_from_slice(&bd_accs);
    row("clean", &c);
    row("BadNets", &b);
}
