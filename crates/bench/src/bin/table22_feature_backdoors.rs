//! Table 22: feature-space backdoors (Refool, BPP, Poison-Ink) — F1 and
//! AUROC of BPROM.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(22);
    let cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
    let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
    header(
        "Table 22 — feature-space backdoors (CIFAR-10)",
        &["attack", "f1", "auroc"],
    );
    for attack in [AttackKind::Refool, AttackKind::Bpp, AttackKind::PoisonInk] {
        let zoo = build_suspicious_zoo(&zoo_config(SynthDataset::Cifar10, attack), &mut rng)
            .expect("zoo");
        let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
        row(attack.name(), &[report.f1, report.auroc]);
    }
}
