//! Fault-injection overhead benchmark: times CMA-ES prompt learning
//! against a bare oracle and against the same oracle behind the hostile
//! stack (`FaultyOracle` + `RetryingOracle`), and writes
//! `BENCH_faults.json` with the wall-clock numbers, the decorator
//! overhead, and the fault/retry/virtual-backoff totals.
//!
//! The retry clock is virtual, so the measured overhead is pure
//! bookkeeping (content hashing, fault draws, re-issued queries) — a real
//! client would additionally sleep `backoff_virtual_ms` of wall time.

use bprom_bench::{header, quick, row};
use bprom_data::SynthDataset;
use bprom_faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_nn::models::{mlp, ModelSpec};
use bprom_obs::{ToJson, Value};
use bprom_tensor::Rng;
use bprom_vp::{
    train_prompt_cmaes, BlackBoxModel, LabelMap, OracleStats, PromptTrainConfig, QueryOracle,
    VisualPrompt,
};
use std::time::Instant;

fn cmaes_config() -> PromptTrainConfig {
    PromptTrainConfig {
        cmaes_generations: if quick() { 10 } else { 25 },
        cmaes_population: 12,
        ..PromptTrainConfig::default()
    }
}

/// One full CMA-ES prompt-learning run against `oracle`; returns the
/// wall-clock seconds and the oracle stack's fault accounting.
fn time_cmaes(oracle: &dyn BlackBoxModel) -> (f64, OracleStats) {
    let mut rng = Rng::new(200);
    let target = SynthDataset::Stl10.generate(10, 16, 9).expect("dataset");
    let map = LabelMap::identity(10, 10).expect("map");
    let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).expect("prompt");
    let before = oracle.oracle_stats();
    let t0 = Instant::now();
    train_prompt_cmaes(
        oracle,
        &mut prompt,
        &target.images,
        &target.labels,
        &map,
        &cmaes_config(),
        &mut rng,
    )
    .expect("cmaes");
    (
        t0.elapsed().as_secs_f64(),
        oracle.oracle_stats().delta_since(&before),
    )
}

fn oracle() -> QueryOracle {
    let mut rng = Rng::new(100);
    let model = mlp(&ModelSpec::new(3, 16, 10), &mut rng).expect("model");
    QueryOracle::new(model, 10)
}

fn main() {
    header(
        "bprom-faults decorator overhead (CMA-ES prompt learning)",
        &["stack", "secs", "faults", "retries", "backoff_ms"],
    );

    let bare_oracle = oracle();
    let (bare_secs, bare_stats) = time_cmaes(&bare_oracle);
    row("bare", &[bare_secs as f32, 0.0, 0.0, 0.0]);
    assert_eq!(bare_stats, OracleStats::default());

    let inner = oracle();
    let plan = Stack(vec![
        Box::new(Transient { rate: 0.10 }),
        Box::new(Quantize { decimals: 3 }),
    ]);
    let faulty = FaultyOracle::new(&inner, plan, 0xBE7C);
    let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
    let (hostile_secs, stats) = time_cmaes(&retrying);
    row(
        "hostile",
        &[
            hostile_secs as f32,
            stats.faults_injected as f32,
            stats.retries as f32,
            stats.backoff_virtual_ms as f32,
        ],
    );

    let overhead = hostile_secs / bare_secs.max(1e-9) - 1.0;
    println!("\nhostile-stack overhead: {:.1} %", overhead * 100.0);

    let json = Value::object(vec![
        ("bare_s", bare_secs.to_json()),
        ("hostile_s", hostile_secs.to_json()),
        ("overhead_frac", overhead.to_json()),
        ("faults_injected", stats.faults_injected.to_json()),
        ("degraded_responses", stats.degraded_responses.to_json()),
        ("retries", stats.retries.to_json()),
        ("retry_exhausted", stats.retry_exhausted.to_json()),
        ("backoff_virtual_ms", stats.backoff_virtual_ms.to_json()),
    ])
    .to_pretty();
    match std::fs::write("BENCH_faults.json", &json) {
        Ok(()) => println!("written -> BENCH_faults.json"),
        Err(e) => eprintln!("BENCH_faults.json write failed: {e}"),
    }
}
