//! Experiment harness for the BPROM reproduction.
//!
//! One binary per paper table/figure lives in `src/bin/`; each prints the
//! same rows/series the paper reports, at substrate scale. Criterion
//! micro-benchmarks live in `benches/`.
//!
//! Scale control: set `BPROM_QUICK=1` to shrink model/zoo counts for a
//! fast smoke pass (the shapes survive; the confidence intervals don't).

use bprom::{BpromConfig, ZooConfig};
use bprom_attacks::AttackKind;
use bprom_data::SynthDataset;

/// Whether the quick (smoke) scale was requested via `BPROM_QUICK=1`.
pub fn quick() -> bool {
    std::env::var("BPROM_QUICK").is_ok_and(|v| v == "1")
}

/// Standard detector configuration used across the tables.
pub fn detector_config(source: SynthDataset, target: SynthDataset) -> BpromConfig {
    let mut cfg = BpromConfig::new(source, target);
    if quick() {
        cfg.clean_shadows = 4;
        cfg.backdoor_shadows = 4;
        cfg.prompt.cmaes_generations = 20;
    } else {
        cfg.clean_shadows = 8;
        cfg.backdoor_shadows = 8;
        cfg.prompt.cmaes_generations = 30;
    }
    // Wide label spaces need a larger black-box prompting budget: with 43+
    // classes the cross-entropy floor is high and 30 generations leave every
    // prompt near-uniform, erasing the clean/backdoor signature.
    if source.num_classes() > 20 {
        cfg.prompt.cmaes_generations *= 2;
        cfg.prompt.epochs *= 2;
    }
    cfg
}

/// Standard suspicious-model zoo used across the tables (the paper uses
/// 30 + 30; substrate scale uses 5 + 5, or 3 + 3 under `BPROM_QUICK`).
pub fn zoo_config(dataset: SynthDataset, attack: AttackKind) -> ZooConfig {
    let mut cfg = ZooConfig::new(dataset, attack);
    let n = if quick() { 3 } else { 5 };
    cfg.clean = n;
    cfg.backdoored = n;
    cfg
}

/// RAII telemetry session for experiment binaries: installs a `bprom-obs`
/// session plus the `bprom-verdict` audit sink on construction, and on
/// drop writes the full run snapshot (`telemetry.json`) and the
/// machine-readable incident report (`incident.json`) as pretty JSON.
///
/// Control via environment:
/// - `BPROM_TELEMETRY=0` disables collection entirely (zero overhead);
/// - `BPROM_TELEMETRY_DIR=<dir>` chooses the output directory (default:
///   current directory). The files are always named `telemetry.json` and
///   `incident.json`;
/// - `BPROM_MODE=learning|strict` selects the incident response mode
///   (default strict — see `bprom_verdict::Mode`).
pub struct TelemetryGuard {
    session: Option<bprom_obs::Session>,
    label: String,
    path: std::path::PathBuf,
    incident_path: std::path::PathBuf,
}

impl TelemetryGuard {
    /// Starts a telemetry session labelled with the experiment name
    /// (unless disabled via `BPROM_TELEMETRY=0`).
    pub fn begin(label: &str) -> Self {
        let disabled = std::env::var("BPROM_TELEMETRY").is_ok_and(|v| v == "0");
        let dir = std::env::var("BPROM_TELEMETRY_DIR").unwrap_or_else(|_| ".".into());
        if !disabled {
            bprom_verdict::sink::install();
        }
        TelemetryGuard {
            session: (!disabled).then(|| bprom_obs::Session::begin(label)),
            label: label.to_string(),
            path: std::path::Path::new(&dir).join("telemetry.json"),
            incident_path: std::path::Path::new(&dir).join("incident.json"),
        }
    }

    /// Whether a session is actually recording.
    pub fn active(&self) -> bool {
        self.session.is_some()
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            let snapshot = session.finish();
            match std::fs::write(&self.path, snapshot.to_json_string()) {
                Ok(()) => eprintln!("telemetry written to {}", self.path.display()),
                Err(e) => eprintln!("telemetry write failed ({}): {e}", self.path.display()),
            }
            let records = bprom_verdict::sink::drain();
            let mode = bprom_verdict::Mode::from_env_or(bprom_verdict::Mode::Strict);
            let report = bprom_verdict::IncidentReport::assemble(
                &self.label,
                &bprom_verdict::RulePolicy::default(),
                mode,
                &records,
            );
            match std::fs::write(&self.incident_path, report.to_json_string()) {
                Ok(()) => eprintln!(
                    "incident report written to {}",
                    self.incident_path.display()
                ),
                Err(e) => eprintln!(
                    "incident write failed ({}): {e}",
                    self.incident_path.display()
                ),
            }
        }
    }
}

/// RAII scratch directory for bench binaries that need disk state
/// (snapshot stores, registries): created under the system temp dir as
/// `<prefix>-<pid>`, removed on drop. Construction first sweeps stale
/// same-prefix siblings left behind by crashed or killed prior runs, so
/// the temp dir doesn't accumulate abandoned `bprom-bench-*` state —
/// the leak the pid-suffixed ad-hoc dirs used to cause.
///
/// Bench binaries are not run concurrently against themselves; the sweep
/// assumes any same-prefix sibling is stale.
pub struct ScopedTempDir {
    path: std::path::PathBuf,
}

impl ScopedTempDir {
    /// Creates (and claims) `<temp>/<prefix>-<pid>`, sweeping stale
    /// same-prefix directories first.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let base = std::env::temp_dir();
        if let Ok(entries) = std::fs::read_dir(&base) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(prefix) {
                    std::fs::remove_dir_all(entry.path()).ok();
                }
            }
        }
        let path = base.join(format!("{prefix}-{}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(ScopedTempDir { path })
    }

    /// The scratch directory's path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for ScopedTempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.path).ok();
    }
}

/// Prints a table header row.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", columns.join("\t"));
}

/// Prints one table row of floats with a leading label.
pub fn row(label: &str, values: &[f32]) {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    println!("{label}\t{}", cells.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_guard_writes_snapshot() {
        let dir = std::env::temp_dir().join("bprom-telemetry-guard-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BPROM_TELEMETRY_DIR", &dir);
        {
            let guard = TelemetryGuard::begin("guard-test");
            assert!(guard.active());
            bprom_obs::counter_add("guard.test", 3);
        }
        std::env::remove_var("BPROM_TELEMETRY_DIR");
        let json = std::fs::read_to_string(dir.join("telemetry.json")).unwrap();
        let snapshot = bprom_obs::TelemetrySnapshot::from_json_str(&json).unwrap();
        assert_eq!(snapshot.counter("guard.test"), 3);
        assert_eq!(snapshot.label, "guard-test");
        // The guard also emits an incident report (empty: no audits ran)
        // that passes the schema validator.
        let json = std::fs::read_to_string(dir.join("incident.json")).unwrap();
        let report = bprom_verdict::IncidentReport::from_json_str(&json).unwrap();
        assert_eq!(report.label, "guard-test");
        assert_eq!(report.audits, 0);
        let doc = bprom_obs::json::Value::parse(&json).unwrap();
        bprom_verdict::validate_incident(&doc).unwrap();
    }

    #[test]
    fn scoped_tempdir_claims_and_sweeps() {
        let stale = std::env::temp_dir().join("bprom-scoped-test-stale");
        std::fs::create_dir_all(&stale).unwrap();
        std::fs::write(stale.join("left-behind"), b"x").unwrap();
        let path;
        {
            let dir = ScopedTempDir::new("bprom-scoped-test").unwrap();
            path = dir.path().to_path_buf();
            assert!(path.is_dir());
            assert!(!stale.exists(), "stale same-prefix dir swept on create");
            std::fs::write(path.join("scratch"), b"y").unwrap();
        }
        assert!(!path.exists(), "scratch dir removed on drop");
    }

    #[test]
    fn configs_are_valid() {
        let cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
        assert!(cfg.validate().is_ok());
        let zoo = zoo_config(SynthDataset::Cifar10, AttackKind::BadNets);
        assert!(zoo.clean > 0 && zoo.backdoored > 0);
    }
}
