//! Criterion micro-benchmarks for the substrate: tensor kernels, model
//! passes, attack application, CMA-ES generations, forest training and
//! metric computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bprom_attacks::AttackKind;
use bprom_data::SynthDataset;
use bprom_meta::{ForestConfig, RandomForest};
use bprom_metrics::auroc;
use bprom_nn::models::{build, Architecture, ModelSpec};
use bprom_nn::{Layer, Mode};
use bprom_tensor::reference::{conv2d_reference, matmul_reference};
use bprom_tensor::{conv2d, Rng, Tensor};
use bprom_vp::{CmaEs, VisualPrompt};

/// The zero-skip `matmul_tn` loop the packed kernel replaced, kept here
/// so the deletion stays re-measurable: `matmul_tn_sparse_64x64` (packed,
/// no skip) vs `matmul_tn_sparse_64x64_zero_skip` on a post-ReLU-like
/// half-zero left operand. At this tiny square shape the skip still edges
/// out the packed kernel (~20%: pack overhead dominates); the branch was
/// retired anyway because it cannot live inside the vectorized
/// microkernel, and the pipeline's GEMM-shaped products — where the
/// packed path wins outright — are what the gated `bench_kernels` floor
/// measures.
fn matmul_tn_zero_skip(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for p in 0..k {
        let a_row = &ad[p * m..(p + 1) * m];
        let b_row = &bd[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).unwrap()
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    // Packed kernel vs the retained scalar oracle, on the same shape.
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| black_box(a.matmul(&b).unwrap()))
    });
    c.bench_function("matmul_64x64_reference", |bch| {
        bch.iter(|| black_box(matmul_reference(&a, &b).unwrap()))
    });
    let relu_like = a.map(|v| if v > 0.0 { v } else { 0.0 });
    c.bench_function("matmul_tn_sparse_64x64", |bch| {
        bch.iter(|| black_box(relu_like.matmul_tn(&b).unwrap()))
    });
    c.bench_function("matmul_tn_sparse_64x64_zero_skip", |bch| {
        bch.iter(|| black_box(matmul_tn_zero_skip(&relu_like, &b)))
    });
    c.bench_function("matmul_tn_dense_64x64", |bch| {
        bch.iter(|| black_box(a.matmul_tn(&b).unwrap()))
    });
    let x = Tensor::randn(&[8, 3, 16, 16], &mut rng);
    let w = Tensor::randn(&[8, 3, 3, 3], &mut rng);
    c.bench_function("conv2d_8x3x16x16", |bch| {
        bch.iter(|| black_box(conv2d(&x, &w, 1, 1).unwrap()))
    });
    c.bench_function("conv2d_8x3x16x16_reference", |bch| {
        bch.iter(|| black_box(conv2d_reference(&x, &w, 1, 1).unwrap()))
    });
}

fn bench_model(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let spec = ModelSpec::new(3, 16, 10);
    let x = Tensor::randn(&[16, 3, 16, 16], &mut rng);
    for arch in [
        Architecture::ResNetMini,
        Architecture::MobileNetMini,
        Architecture::VitMini,
    ] {
        let mut model = build(arch, &spec, &mut rng).unwrap();
        c.bench_function(&format!("{arch}_forward_b16"), |bch| {
            bch.iter(|| black_box(model.forward(&x, Mode::Eval).unwrap()))
        });
    }
    let mut model = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
    c.bench_function("resnet_forward_backward_b16", |bch| {
        bch.iter(|| {
            let y = model.forward(&x, Mode::Train).unwrap();
            model.zero_grad();
            black_box(model.backward(&y).unwrap())
        })
    });
}

fn bench_attacks(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let img = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
    for kind in [
        AttackKind::BadNets,
        AttackKind::Blend,
        AttackKind::WaNet,
        AttackKind::Bpp,
    ] {
        let attack = kind.build(16, &mut rng).unwrap();
        c.bench_function(&format!("attack_{}", kind.name()), |bch| {
            bch.iter(|| black_box(attack.apply(&img, &mut rng).unwrap()))
        });
    }
}

fn bench_vp(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
    let imgs = Tensor::rand_uniform(&[16, 3, 16, 16], 0.0, 1.0, &mut rng);
    c.bench_function("prompt_apply_batch_16", |bch| {
        bch.iter(|| black_box(prompt.apply_batch(&imgs).unwrap()))
    });
    let dim = prompt.num_border_params();
    c.bench_function("cmaes_ask_tell_576d", |bch| {
        let mut es = CmaEs::new(&vec![0.0f32; dim], 0.2, 12).unwrap();
        bch.iter(|| {
            let pop = es.ask(&mut rng);
            let fit: Vec<f32> = pop.iter().map(|x| x.iter().map(|v| v * v).sum()).collect();
            es.tell(&pop, &fit).unwrap();
        })
    });
}

fn bench_meta(c: &mut Criterion) {
    let mut rng = Rng::new(4);
    let features: Vec<Vec<f32>> = (0..20)
        .map(|i| {
            (0..100)
                .map(|j| ((i * j) % 17) as f32 / 17.0 + if i < 10 { 0.0 } else { 0.5 })
                .collect()
        })
        .collect();
    let labels: Vec<bool> = (0..20).map(|i| i >= 10).collect();
    c.bench_function("forest_fit_300trees", |bch| {
        bch.iter(|| {
            black_box(
                RandomForest::fit(&features, &labels, &ForestConfig::default(), &mut rng).unwrap(),
            )
        })
    });
    let scores: Vec<f32> = (0..1000).map(|i| (i % 97) as f32 / 97.0).collect();
    let truth: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
    c.bench_function("auroc_1000", |bch| {
        bch.iter(|| black_box(auroc(&scores, &truth).unwrap()))
    });
}

fn bench_data(c: &mut Criterion) {
    c.bench_function("synth_cifar10_generate_100", |bch| {
        bch.iter(|| black_box(SynthDataset::Cifar10.generate(10, 16, 1).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_tensor,
    bench_model,
    bench_attacks,
    bench_vp,
    bench_meta,
    bench_data
);
criterion_main!(benches);
