//! Telemetry overhead check: the instrumented prompt-training step must be
//! within noise (<2%) of the uninstrumented one when no `bprom-obs`
//! session is installed, and cheap even with one installed.
//!
//! Three cases over an identical CMA-ES prompt-training step:
//! - `disabled`  — no session installed (the production default): the only
//!   instrumentation cost is one thread-local flag read per hook.
//! - `enabled`   — a session is recording spans/counters/histograms.
//! - plus a pure hook microbench (`span_disabled`) isolating the flag read.

use bprom_data::SynthDataset;
use bprom_nn::models::{mlp, ModelSpec};
use bprom_tensor::Rng;
use bprom_vp::{train_prompt_cmaes, LabelMap, PromptTrainConfig, QueryOracle, VisualPrompt};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn step_config() -> PromptTrainConfig {
    PromptTrainConfig {
        cmaes_generations: 1,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    }
}

/// One full CMA-ES prompt-training step (1 generation, population 6)
/// against a small MLP oracle.
fn prompt_step(oracle: &QueryOracle, images: &bprom_tensor::Tensor, labels: &[usize]) {
    let mut rng = Rng::new(7);
    let map = LabelMap::identity(10, 10).unwrap();
    let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
    let report = train_prompt_cmaes(
        oracle,
        &mut prompt,
        images,
        labels,
        &map,
        &step_config(),
        &mut rng,
    )
    .unwrap();
    black_box(report.queries);
}

fn bench_overhead(c: &mut Criterion) {
    let mut rng = Rng::new(11);
    let data = SynthDataset::Stl10.generate(4, 16, 3).unwrap();
    let model = mlp(&ModelSpec::new(3, 16, 10), &mut rng).unwrap();
    let oracle = QueryOracle::new(model, 10);

    c.bench_function("prompt_step/disabled", |b| {
        b.iter(|| prompt_step(&oracle, &data.images, &data.labels));
    });

    {
        let session = bprom_obs::Session::begin("obs-overhead-bench");
        c.bench_function("prompt_step/enabled", |b| {
            b.iter(|| prompt_step(&oracle, &data.images, &data.labels));
        });
        let snapshot = session.finish();
        // Prove the enabled case actually recorded traffic.
        assert!(!snapshot.spans.is_empty());
        assert!(snapshot.histograms.contains_key("cmaes.generation_ns"));
    }

    // The raw cost of a telemetry hook when disabled: one Cell read.
    c.bench_function("hook/span_disabled", |b| {
        b.iter(|| {
            bprom_obs::span!("bench_noop");
            black_box(bprom_obs::enabled())
        });
    });
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
