//! Degraded-oracle deployment regimes for the BPROM black-box boundary.
//!
//! Real MLaaS endpoints rarely return the full soft-score vector the
//! paper assumes: they quantize probabilities, truncate to top-k, or
//! return hard labels only. `bprom-faults` simulates those shapes as
//! *transient hostility* (a fault plan the retry stack fights); this
//! crate promotes them to **declared capabilities of the audit** — an
//! [`OracleRegime`] the detector is *configured* for, so that shadow
//! prompting, CMA-ES fitness and meta-feature extraction all train and
//! inspect on matched response distributions.
//!
//! Regime vs fault, in one line: a fault is *transient hostility* the
//! client retries around; a regime is the *contract* of the endpoint —
//! permanent, declared up front, and compensated for in the detector's
//! statistics rather than retried (see DESIGN.md §5j).
//!
//! * **[`OracleRegime`]** — `FullScores | Quantized(d) | TopK(k) |
//!   LabelOnly`, parsed from `BPROM_ORACLE_REGIME` ([`REGIME_ENV`]) in
//!   the same lenient style as `BPROM_QCACHE`.
//! * **[`RegimeOracle`]** — a stateless [`BlackBoxModel`] decorator that
//!   applies the regime's degradation to every response. It is a pure
//!   per-response function of the content (no seeds, no counters), so it
//!   preserves every cache/threads byte-identity invariant, and it is
//!   *idempotent*: wrapping an oracle that already enforces the regime
//!   natively changes nothing.
//! * **Feature helpers** — [`OracleRegime::prepare_confidences`]
//!   (degrade + top-k mass renormalization before canonical soft-score
//!   features) and [`vote_features`] (compact vote-count statistics for
//!   the label-only regime, where soft statistics are degenerate).
//!
//! The regime's degradation *reuses* the `bprom-faults` plan math
//! (`Quantize` / `TopK` / `LabelOnly`), so the wire shapes a hostile
//! plan produces and a declared regime produces are bit-identical.

use bprom_ckpt::{Decoder, Encoder};
use bprom_faults::{FaultPlan, LabelOnly, Quantize, TopK};
use bprom_tensor::{Rng, Tensor};
use bprom_vp::{BlackBoxModel, FitnessKind, OracleStats, QueryOutcome, Result};

/// Environment variable selecting the oracle regime
/// (`full` | `quantized:<decimals>` | `top_k:<k>` | `label_only`).
pub const REGIME_ENV: &str = "BPROM_ORACLE_REGIME";

/// The declared response capability of the audited endpoint.
///
/// `FullScores` is the paper's threat model; the other variants describe
/// what a constrained endpoint's wire format keeps. The regime is part
/// of `BpromConfig`, so it flows into detector fingerprints and the
/// fleet registry's content addressing: detectors trained for different
/// regimes never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OracleRegime {
    /// The endpoint returns the full softmax confidence vector.
    #[default]
    FullScores,
    /// Probabilities rounded to this many decimal places (0 collapses
    /// every entry to 0/1 — see `bprom_faults::Quantize`).
    Quantized(u32),
    /// Only each row's `k` largest probabilities survive; the rest read
    /// as exact zeros (ties break toward the lower class index).
    TopK(usize),
    /// Responses collapse to a one-hot vector at the argmax class.
    LabelOnly,
}

impl OracleRegime {
    /// Parses the documented wire forms, case-insensitively:
    /// `full` / `full_scores`, `quantized:<decimals>`, `top_k:<k>`,
    /// `label_only`. Returns `None` for anything else.
    pub fn parse(raw: &str) -> Option<OracleRegime> {
        let raw = raw.trim();
        if raw.eq_ignore_ascii_case("full") || raw.eq_ignore_ascii_case("full_scores") {
            return Some(OracleRegime::FullScores);
        }
        if raw.eq_ignore_ascii_case("label_only") {
            return Some(OracleRegime::LabelOnly);
        }
        let lower = raw.to_ascii_lowercase();
        if let Some(d) = lower.strip_prefix("quantized:") {
            return d.trim().parse().ok().map(OracleRegime::Quantized);
        }
        if let Some(k) = lower.strip_prefix("top_k:") {
            return k
                .trim()
                .parse()
                .ok()
                .filter(|&k| k > 0)
                .map(OracleRegime::TopK);
        }
        None
    }

    /// Reads [`REGIME_ENV`]; `None` when unset or malformed (lenient —
    /// a typo'd regime must not silently change what an audit measures,
    /// so callers fall back to an explicit default).
    pub fn from_env() -> Option<OracleRegime> {
        std::env::var(REGIME_ENV).ok().and_then(|v| Self::parse(&v))
    }

    /// [`OracleRegime::from_env`] with a fallback.
    pub fn from_env_or(default: OracleRegime) -> OracleRegime {
        Self::from_env().unwrap_or(default)
    }

    /// The canonical wire form ([`OracleRegime::parse`] round-trips it);
    /// recorded in audit records and incident reports.
    pub fn as_wire(&self) -> String {
        match self {
            OracleRegime::FullScores => "full".to_string(),
            OracleRegime::Quantized(d) => format!("quantized:{d}"),
            OracleRegime::TopK(k) => format!("top_k:{k}"),
            OracleRegime::LabelOnly => "label_only".to_string(),
        }
    }

    /// Whether responses keep usable soft scores (drives which feature
    /// path `bprom::meta_model` takes).
    pub fn has_soft_scores(&self) -> bool {
        !matches!(self, OracleRegime::LabelOnly)
    }

    /// The CMA-ES candidate objective matched to this regime (see
    /// `bprom_vp::FitnessKind`).
    pub fn fitness(&self) -> FitnessKind {
        match self {
            OracleRegime::FullScores | OracleRegime::Quantized(_) => FitnessKind::CrossEntropy,
            OracleRegime::TopK(_) => FitnessKind::RenormCrossEntropy,
            OracleRegime::LabelOnly => FitnessKind::MissRate,
        }
    }

    /// Applies the regime's degradation to an `[n, k]` confidence matrix
    /// in place. Bit-identical to the corresponding `bprom-faults` plan
    /// and idempotent, so applying it to an already-degraded response is
    /// a no-op. Returns `true` if anything changed.
    pub fn degrade(&self, probs: &mut Tensor) -> bool {
        // The plan math never draws from the RNG for these three shapes;
        // the fixed seed only satisfies the FaultPlan signature.
        let mut rng = Rng::new(0);
        match self {
            OracleRegime::FullScores => false,
            OracleRegime::Quantized(d) => Quantize { decimals: *d }.degrade(&mut rng, probs),
            OracleRegime::TopK(k) => TopK { k: *k }.degrade(&mut rng, probs),
            OracleRegime::LabelOnly => LabelOnly.degrade(&mut rng, probs),
        }
    }

    /// Prepares an `[n, k]` confidence matrix for canonical soft-score
    /// feature extraction under this regime: degrades (idempotent, so
    /// whitebox shadow confidences and already-degraded blackbox
    /// responses land on the same distribution), then renormalizes each
    /// top-k row to its surviving mass so rank statistics compare
    /// likelihoods rather than truncation artifacts. Zero-mass rows
    /// fall back to uniform.
    pub fn prepare_confidences(&self, probs: &mut Tensor) {
        self.degrade(probs);
        if let OracleRegime::TopK(_) = self {
            renormalize_rows(probs);
        }
    }
}

impl std::fmt::Display for OracleRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_wire())
    }
}

/// Renormalizes each row of an `[n, k]` matrix to sum to 1 (uniform for
/// zero-mass rows).
pub fn renormalize_rows(probs: &mut Tensor) {
    let k = probs.shape()[1];
    let rows = probs.shape()[0];
    let data = probs.data_mut();
    for row in 0..rows {
        let slice = &mut data[row * k..(row + 1) * k];
        let mass: f32 = slice.iter().sum();
        if mass > 0.0 {
            for p in slice.iter_mut() {
                *p /= mass;
            }
        } else {
            slice.fill(1.0 / k as f32);
        }
    }
}

/// Compact vote-count features for the label-only regime, replacing the
/// canonical soft-score statistics (which are degenerate on one-hot
/// responses): per-class vote fractions over the `q` probe responses,
/// canonicalized by descending fraction (class identity is arbitrary
/// across models, exactly like the rank canonicalization of the
/// soft-score path), plus the top-1/top-2 margin, the entropy of the
/// vote distribution, and the probe-label agreement rate. Length `k + 3`.
pub fn vote_features(probs: &Tensor, probe_labels: &[usize]) -> Vec<f32> {
    let q = probs.shape()[0];
    let k = probs.shape()[1];
    let data = probs.data();
    let mut counts = vec![0u32; k];
    let mut agree = 0u32;
    for row in 0..q {
        let slice = &data[row * k..(row + 1) * k];
        let mut best = 0usize;
        for c in 1..k {
            if slice[c] > slice[best] {
                best = c;
            }
        }
        counts[best] += 1;
        if probe_labels.get(row) == Some(&best) {
            agree += 1;
        }
    }
    let mut fractions: Vec<f32> = counts.iter().map(|&c| c as f32 / q.max(1) as f32).collect();
    // Stable descending sort: equal fractions keep class order, so the
    // canonicalization is content-deterministic.
    fractions.sort_by(|a, b| b.total_cmp(a));
    let margin = if k >= 2 {
        fractions[0] - fractions[1]
    } else {
        0.0
    };
    let entropy: f32 = fractions
        .iter()
        .map(|&p| {
            let p = p.max(1e-9);
            -p * p.ln()
        })
        .sum();
    let mut features = fractions;
    features.push(margin);
    features.push(entropy);
    features.push(agree as f32 / q.max(1) as f32);
    features
}

/// A [`BlackBoxModel`] decorator enforcing a declared [`OracleRegime`]
/// on every response.
///
/// Unlike `bprom_faults::FaultyOracle` this is *stateless*: the
/// degradation is a pure function of the response content, with no
/// seeds, attempt counters or arrival ordering — so stacking it above a
/// query cache or fanning queries across threads cannot perturb a
/// single byte. It deliberately does **not** count its rewrites as
/// `degraded_responses`: a declared capability is the endpoint's
/// contract, not an anomaly, and the fault-rate rules (B010) must not
/// fire on it.
pub struct RegimeOracle<'a> {
    inner: &'a dyn BlackBoxModel,
    regime: OracleRegime,
}

impl std::fmt::Debug for RegimeOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegimeOracle")
            .field("regime", &self.regime)
            .finish()
    }
}

impl<'a> RegimeOracle<'a> {
    /// Wraps `inner` under the given regime.
    pub fn new(inner: &'a dyn BlackBoxModel, regime: OracleRegime) -> Self {
        RegimeOracle { inner, regime }
    }

    /// The enforced regime.
    pub fn regime(&self) -> OracleRegime {
        self.regime
    }
}

impl BlackBoxModel for RegimeOracle<'_> {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        let mut probs = self.inner.query(batch)?;
        self.regime.degrade(&mut probs);
        Ok(probs)
    }

    fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
        match self.inner.try_query_batch(batch)? {
            Ok(mut probs) => {
                self.regime.degrade(&mut probs);
                Ok(Ok(probs))
            }
            Err(fault) => Ok(Err(fault)),
        }
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn queries_used(&self) -> u64 {
        self.inner.queries_used()
    }

    fn oracle_stats(&self) -> OracleStats {
        self.inner.oracle_stats()
    }

    fn export_cache(&self, enc: &mut Encoder) -> bool {
        self.inner.export_cache(enc)
    }

    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        self.inner.import_cache(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_vp::QueryOracle;

    #[test]
    fn parse_accepts_the_documented_forms() {
        assert_eq!(OracleRegime::parse("full"), Some(OracleRegime::FullScores));
        assert_eq!(
            OracleRegime::parse(" Full_Scores "),
            Some(OracleRegime::FullScores)
        );
        assert_eq!(
            OracleRegime::parse("quantized:3"),
            Some(OracleRegime::Quantized(3))
        );
        assert_eq!(
            OracleRegime::parse("QUANTIZED:0"),
            Some(OracleRegime::Quantized(0))
        );
        assert_eq!(OracleRegime::parse("top_k:3"), Some(OracleRegime::TopK(3)));
        assert_eq!(
            OracleRegime::parse("label_only"),
            Some(OracleRegime::LabelOnly)
        );
    }

    #[test]
    fn malformed_values_parse_to_none() {
        for raw in [
            "",
            "fulll",
            "top_k:",
            "top_k:0",
            "top_k:-1",
            "quantized:x",
            "labels",
        ] {
            assert_eq!(OracleRegime::parse(raw), None, "{raw:?}");
        }
    }

    #[test]
    fn wire_form_round_trips() {
        for regime in [
            OracleRegime::FullScores,
            OracleRegime::Quantized(2),
            OracleRegime::TopK(3),
            OracleRegime::LabelOnly,
        ] {
            assert_eq!(OracleRegime::parse(&regime.as_wire()), Some(regime));
        }
    }

    #[test]
    fn fitness_matches_regime() {
        assert_eq!(
            OracleRegime::FullScores.fitness(),
            FitnessKind::CrossEntropy
        );
        assert_eq!(
            OracleRegime::Quantized(3).fitness(),
            FitnessKind::CrossEntropy
        );
        assert_eq!(
            OracleRegime::TopK(3).fitness(),
            FitnessKind::RenormCrossEntropy
        );
        assert_eq!(OracleRegime::LabelOnly.fitness(), FitnessKind::MissRate);
    }

    fn matrix(rows: &[&[f32]]) -> Tensor {
        let k = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(data, &[rows.len(), k]).unwrap()
    }

    #[test]
    fn degrade_is_idempotent_for_every_regime() {
        for regime in [
            OracleRegime::FullScores,
            OracleRegime::Quantized(2),
            OracleRegime::TopK(2),
            OracleRegime::LabelOnly,
        ] {
            let mut once = matrix(&[&[0.123, 0.456, 0.321, 0.1], &[0.25, 0.25, 0.3, 0.2]]);
            regime.degrade(&mut once);
            let mut twice = once.clone();
            regime.degrade(&mut twice);
            assert_eq!(once, twice, "{regime} must be idempotent");
        }
    }

    #[test]
    fn prepare_renormalizes_top_k_mass() {
        let mut probs = matrix(&[&[0.5, 0.3, 0.1, 0.1]]);
        OracleRegime::TopK(2).prepare_confidences(&mut probs);
        let row = probs.data();
        assert!((row[0] - 0.625).abs() < 1e-6);
        assert!((row[1] - 0.375).abs() < 1e-6);
        assert_eq!(&row[2..], &[0.0, 0.0]);
    }

    #[test]
    fn renormalize_handles_zero_mass() {
        let mut probs = matrix(&[&[0.0, 0.0]]);
        renormalize_rows(&mut probs);
        assert_eq!(probs.data(), &[0.5, 0.5]);
    }

    #[test]
    fn vote_features_are_canonical_and_sized() {
        // 3 probes vote class 2, 1 votes class 0; labels agree twice.
        let probs = matrix(&[
            &[0.1, 0.2, 0.7],
            &[0.2, 0.1, 0.7],
            &[0.3, 0.2, 0.5],
            &[0.6, 0.2, 0.2],
        ]);
        let features = vote_features(&probs, &[2, 2, 1, 1]);
        assert_eq!(features.len(), 3 + 3);
        assert_eq!(&features[..3], &[0.75, 0.25, 0.0]);
        assert!((features[3] - 0.5).abs() < 1e-6, "margin");
        assert!(features[4] > 0.0, "entropy");
        assert!((features[5] - 0.5).abs() < 1e-6, "agreement");
        // Permuting class identities leaves the canonical fractions
        // unchanged (votes move with the classes).
        let permuted = matrix(&[
            &[0.7, 0.2, 0.1],
            &[0.7, 0.1, 0.2],
            &[0.5, 0.2, 0.3],
            &[0.2, 0.2, 0.6],
        ]);
        let permuted_features = vote_features(&permuted, &[0, 0, 1, 1]);
        assert_eq!(&features[..3], &permuted_features[..3]);
    }

    #[test]
    fn regime_oracle_degrades_and_stays_transparent() {
        let mut rng = Rng::new(0);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let batch = Tensor::rand_uniform(&[3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let full = oracle.query(&batch).unwrap();

        let label_only = RegimeOracle::new(&oracle, OracleRegime::LabelOnly);
        let probs = label_only.query(&batch).unwrap();
        for row in 0..3 {
            let slice = &probs.data()[row * 5..(row + 1) * 5];
            assert_eq!(slice.iter().filter(|&&p| p == 1.0).count(), 1);
            assert_eq!(slice.iter().filter(|&&p| p == 0.0).count(), 4);
        }
        // Accounting is transparent: queries counted by the inner oracle,
        // no degraded/fault stats invented.
        assert_eq!(label_only.queries_used(), oracle.queries_used());
        assert_eq!(label_only.oracle_stats(), OracleStats::default());

        // FullScores is a byte-exact passthrough.
        let passthrough = RegimeOracle::new(&oracle, OracleRegime::FullScores);
        assert_eq!(passthrough.query(&batch).unwrap(), full);

        // Wrapping an already-enforcing oracle changes nothing (idempotent).
        let inner = RegimeOracle::new(&oracle, OracleRegime::TopK(2));
        let outer = RegimeOracle::new(&inner, OracleRegime::TopK(2));
        assert_eq!(outer.query(&batch).unwrap(), inner.query(&batch).unwrap());
    }

    #[test]
    fn env_parsing_is_lenient() {
        // REGIME_ENV is unset in unit tests; the fallback must hold.
        assert_eq!(
            OracleRegime::from_env_or(OracleRegime::TopK(3)),
            OracleRegime::from_env().unwrap_or(OracleRegime::TopK(3))
        );
    }
}
