//! Loss functions. Each returns `(loss, gradient-with-respect-to-input)`
//! so training loops can feed the gradient straight into
//! [`crate::Layer::backward`].

use crate::metrics::softmax;
use crate::{NnError, Result};
use bprom_tensor::Tensor;

/// Softmax cross-entropy over logits `[n, k]` with integer class labels.
///
/// Returns the mean loss over the batch and the gradient of that mean with
/// respect to the logits.
///
/// # Errors
///
/// Returns [`NnError::InvalidLabels`] if `labels.len() != n` or any label
/// is `>= k`, and an error for non-rank-2 logits.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
            reason: format!(
                "cross entropy expects [n, k] logits, got {:?}",
                logits.shape()
            ),
        }));
    }
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != n {
        return Err(NnError::InvalidLabels {
            reason: format!("{} labels for {} logits rows", labels.len(), n),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::InvalidLabels {
            reason: format!("label {bad} out of range for {k} classes"),
        });
    }
    let probs = softmax(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.data()[i * k + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * k + label] -= 1.0;
    }
    grad.scale_in_place(inv_n);
    Ok((loss * inv_n, grad))
}

/// Mean squared error between predictions and targets of identical shape.
///
/// Returns the mean loss and its gradient with respect to `pred`.
///
/// # Errors
///
/// Returns a shape-mismatch error if the operands differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    let diff = pred.sub_t(target)?;
    let n = diff.len() as f32;
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_tensor::Rng;

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0, 100.0], &[2, 2]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(&[3, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_finite_difference() {
        let mut rng = Rng::new(0);
        let mut logits = Tensor::randn(&[3, 5], &mut rng);
        let labels = [1usize, 4, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for flat in 0..logits.len() {
            let orig = logits.data()[flat];
            logits.data_mut()[flat] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&logits, &labels).unwrap();
            logits.data_mut()[flat] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&logits, &labels).unwrap();
            logits.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.data()[flat]).abs() < 1e-3,
                "flat={flat}: {num} vs {}",
                grad.data()[flat]
            );
        }
    }

    #[test]
    fn invalid_labels_rejected() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let (loss, grad) = mse(&pred, &target).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }
}
