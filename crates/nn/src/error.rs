use bprom_tensor::TensorError;
use std::fmt;

/// Error type for neural-network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (usually a shape mismatch).
    Tensor(TensorError),
    /// `backward` was called before `forward`, so the layer has no cached
    /// activations to differentiate through.
    BackwardBeforeForward {
        /// Name of the offending layer.
        layer: &'static str,
    },
    /// A configuration value is invalid (e.g. zero hidden width).
    InvalidConfig {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// Labels are inconsistent with logits (wrong count or out-of-range
    /// class index).
    InvalidLabels {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            NnError::InvalidLabels { reason } => write!(f, "invalid labels: {reason}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::InvalidShape { reason: "x".into() };
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
    }

    #[test]
    fn display_mentions_layer() {
        let e = NnError::BackwardBeforeForward { layer: "Dense" };
        assert!(e.to_string().contains("Dense"));
    }
}
