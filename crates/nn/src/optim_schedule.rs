//! Learning-rate schedules, composable with any optimizer via
//! [`crate::optim::Sgd::set_lr`] / [`crate::optim::Adam::set_lr`].

/// A learning-rate schedule: maps an epoch index to a learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate used for every epoch.
        lr: f32,
    },
    /// Multiplicative decay: `lr · factor^epoch`.
    Exponential {
        /// Initial learning rate.
        lr: f32,
        /// Per-epoch decay factor in `(0, 1]`.
        factor: f32,
    },
    /// Step decay: divide by 10 at each milestone.
    Step {
        /// Initial learning rate.
        lr: f32,
        /// Epoch at which the first division happens; subsequent divisions
        /// occur at each further multiple.
        every: usize,
    },
    /// Cosine annealing from `lr` down to `min_lr` over `total` epochs.
    Cosine {
        /// Initial learning rate.
        lr: f32,
        /// Final learning rate.
        min_lr: f32,
        /// Total scheduled epochs.
        total: usize,
    },
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based).
    pub fn at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Exponential { lr, factor } => lr * factor.powi(epoch as i32),
            LrSchedule::Step { lr, every } => {
                let divisions = epoch.checked_div(every).unwrap_or(0);
                lr / 10f32.powi(divisions as i32)
            }
            LrSchedule::Cosine { lr, min_lr, total } => {
                if total <= 1 {
                    return min_lr;
                }
                let t = (epoch.min(total - 1)) as f32 / (total - 1) as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(100), 0.1);
    }

    #[test]
    fn exponential_decays() {
        let s = LrSchedule::Exponential {
            lr: 1.0,
            factor: 0.5,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(2), 0.25);
    }

    #[test]
    fn step_divides_by_ten() {
        let s = LrSchedule::Step { lr: 1.0, every: 3 };
        assert_eq!(s.at(2), 1.0);
        assert!((s.at(3) - 0.1).abs() < 1e-7);
        assert!((s.at(6) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn cosine_hits_endpoints_and_is_monotone() {
        let s = LrSchedule::Cosine {
            lr: 1.0,
            min_lr: 0.01,
            total: 10,
        };
        assert!((s.at(0) - 1.0).abs() < 1e-6);
        assert!((s.at(9) - 0.01).abs() < 1e-6);
        for e in 0..9 {
            assert!(s.at(e) >= s.at(e + 1));
        }
        // Past the horizon it stays at min_lr.
        assert!((s.at(50) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn degenerate_step_and_cosine() {
        assert_eq!(LrSchedule::Step { lr: 1.0, every: 0 }.at(5), 1.0);
        assert_eq!(
            LrSchedule::Cosine {
                lr: 1.0,
                min_lr: 0.1,
                total: 1
            }
            .at(0),
            0.1
        );
    }
}
