//! Layer implementations.

mod activation;
mod attention;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod norm;
mod pool;
mod residual;
mod tokens;

pub use activation::{Gelu, LeakyRelu, Relu, Tanh};
pub use attention::{Attention, PatchEmbed};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use norm::{BatchNorm2d, LayerNorm};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use residual::Residual;
pub use tokens::{FoldTokens, TokenMeanPool, UnfoldTokens};
