use crate::layer::{Layer, Mode, Param};
use crate::layers::Conv2d;
use crate::{init, NnError, Result};
use bprom_tensor::{Rng, Tensor};

/// Patch embedding: a strided convolution followed by a reshape from
/// `[n, d, gh, gw]` feature maps to `[n, t, d]` token sequences
/// (`t = gh * gw`).
///
/// This is the standard ViT stem; [`crate::models::vit_mini`] and
/// [`crate::models::swin_mini`] build on it.
#[derive(Debug)]
pub struct PatchEmbed {
    conv: Conv2d,
    cached_grid: Option<(usize, usize)>,
}

impl PatchEmbed {
    /// Creates a patch embedding producing `dim`-wide tokens from square
    /// patches of side `patch`.
    pub fn new(in_channels: usize, dim: usize, patch: usize, rng: &mut Rng) -> Self {
        PatchEmbed {
            conv: Conv2d::new(in_channels, dim, patch, patch, 0, rng),
            cached_grid: None,
        }
    }

    fn to_tokens(feat: &Tensor) -> Tensor {
        let (n, d, gh, gw) = (
            feat.shape()[0],
            feat.shape()[1],
            feat.shape()[2],
            feat.shape()[3],
        );
        let t = gh * gw;
        let mut out = Tensor::zeros(&[n, t, d]);
        for ni in 0..n {
            for di in 0..d {
                for ti in 0..t {
                    let src = ((ni * d + di) * t) + ti;
                    let dst = (ni * t + ti) * d + di;
                    out.data_mut()[dst] = feat.data()[src];
                }
            }
        }
        out
    }

    fn to_maps(tokens: &Tensor, gh: usize, gw: usize) -> Tensor {
        let (n, t, d) = (tokens.shape()[0], tokens.shape()[1], tokens.shape()[2]);
        let mut out = Tensor::zeros(&[n, d, gh, gw]);
        for ni in 0..n {
            for di in 0..d {
                for ti in 0..t {
                    let dst = ((ni * d + di) * t) + ti;
                    let src = (ni * t + ti) * d + di;
                    out.data_mut()[dst] = tokens.data()[src];
                }
            }
        }
        out
    }
}

impl Layer for PatchEmbed {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let feat = self.conv.forward(input, mode)?;
        let (gh, gw) = (feat.shape()[2], feat.shape()[3]);
        if mode.caches() {
            self.cached_grid = Some((gh, gw));
        }
        Ok(Self::to_tokens(&feat))
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        let feat = self.conv.forward_eval(input)?;
        Ok(Self::to_tokens(&feat))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (gh, gw) = self.cached_grid.ok_or(NnError::BackwardBeforeForward {
            layer: "PatchEmbed",
        })?;
        let grad_maps = Self::to_maps(grad_output, gh, gw);
        self.conv.backward(&grad_maps)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.conv.visit_params(f);
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        self.conv.visit_params_shared(f);
    }

    fn name(&self) -> &'static str {
        "PatchEmbed"
    }
}

/// Single-head self-attention over `[n, t, d]` token sequences, with an
/// optional Swin-style square attention window.
///
/// With `window: None` every token attends to every token (ViT). With
/// `window: Some(w)` tokens are assumed to lie on a square grid and only
/// attend within non-overlapping `w × w` windows (Swin).
pub struct Attention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    dim: usize,
    window: Option<usize>,
    cache: Option<AttnCache>,
}

impl std::fmt::Debug for Attention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Attention")
            .field("dim", &self.dim)
            .field("window", &self.window)
            .finish()
    }
}

struct AttnCache {
    x: Tensor,
    q: Vec<Tensor>,
    k: Vec<Tensor>,
    v: Vec<Tensor>,
    a: Vec<Tensor>,
    o: Vec<Tensor>,
}

impl Attention {
    /// Creates full self-attention of width `dim`.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        Self::build(dim, None, rng)
    }

    /// Creates windowed self-attention (Swin-style) with window side `w`
    /// measured in tokens.
    pub fn windowed(dim: usize, w: usize, rng: &mut Rng) -> Self {
        Self::build(dim, Some(w), rng)
    }

    fn build(dim: usize, window: Option<usize>, rng: &mut Rng) -> Self {
        let mk = |rng: &mut Rng| Param::new(init::xavier(&[dim, dim], dim, dim, rng));
        Attention {
            wq: mk(rng),
            wk: mk(rng),
            wv: mk(rng),
            wo: mk(rng),
            dim,
            window,
            cache: None,
        }
    }

    /// Shared attention kernel for the caching and cache-free paths:
    /// computes the full forward pass, pushing per-sample intermediates
    /// into `cache` when one is supplied.
    fn run(&self, input: &Tensor, mut cache: Option<&mut AttnCache>) -> Result<Tensor> {
        if input.rank() != 3 || input.shape()[2] != self.dim {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!(
                    "Attention({}) expects [n, t, {}], got {:?}",
                    self.dim,
                    self.dim,
                    input.shape()
                ),
            }));
        }
        let (n, t, d) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let scale = 1.0 / (d as f32).sqrt();
        let mut out = Tensor::zeros(input.shape());
        for ni in 0..n {
            let x = input.sample(ni)?; // [t, d]
            let q = x.matmul(&self.wq.value)?;
            let k = x.matmul(&self.wk.value)?;
            let v = x.matmul(&self.wv.value)?;
            let mut scores = q.matmul_nt(&k)?.scale(scale);
            self.masked(&mut scores, t)?;
            let a = softmax_rows(&scores);
            let o = a.matmul(&v)?;
            let y = o.matmul(&self.wo.value)?;
            out.data_mut()[ni * t * d..(ni + 1) * t * d].copy_from_slice(y.data());
            if let Some(c) = &mut cache {
                c.q.push(q);
                c.k.push(k);
                c.v.push(v);
                c.a.push(a);
                c.o.push(o);
            }
        }
        Ok(out)
    }

    /// Whether two tokens on a `g × g` grid share a `w × w` window.
    fn same_window(t1: usize, t2: usize, g: usize, w: usize) -> bool {
        let (y1, x1) = (t1 / g, t1 % g);
        let (y2, x2) = (t2 / g, t2 % g);
        y1 / w == y2 / w && x1 / w == x2 / w
    }

    fn masked(&self, scores: &mut Tensor, t: usize) -> Result<()> {
        if let Some(w) = self.window {
            let g = (t as f32).sqrt().round() as usize;
            if g * g != t {
                return Err(NnError::InvalidConfig {
                    reason: format!("windowed attention requires a square token grid, got t={t}"),
                });
            }
            for i in 0..t {
                for j in 0..t {
                    if !Self::same_window(i, j, g, w) {
                        scores.data_mut()[i * t + j] = f32::NEG_INFINITY;
                    }
                }
            }
        }
        Ok(())
    }
}

fn softmax_rows(scores: &Tensor) -> Tensor {
    let (r, c) = (scores.shape()[0], scores.shape()[1]);
    let mut out = Tensor::zeros(&[r, c]);
    for i in 0..r {
        let row = &scores.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (j, e) in exps.iter().enumerate() {
            out.data_mut()[i * c + j] = e / sum;
        }
    }
    out
}

/// Row-wise softmax Jacobian-vector product: given softmax output `a` and
/// upstream gradient `da`, returns `ds` where `s` are the pre-softmax scores.
fn softmax_rows_backward(a: &Tensor, da: &Tensor) -> Tensor {
    let (r, c) = (a.shape()[0], a.shape()[1]);
    let mut out = Tensor::zeros(&[r, c]);
    for i in 0..r {
        let arow = &a.data()[i * c..(i + 1) * c];
        let drow = &da.data()[i * c..(i + 1) * c];
        let dot: f32 = arow.iter().zip(drow).map(|(&x, &y)| x * y).sum();
        for j in 0..c {
            out.data_mut()[i * c + j] = arow[j] * (drow[j] - dot);
        }
    }
    out
}

impl Layer for Attention {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if !mode.caches() {
            return self.run(input, None);
        }
        let mut cache = AttnCache {
            x: input.clone(),
            q: Vec::new(),
            k: Vec::new(),
            v: Vec::new(),
            a: Vec::new(),
            o: Vec::new(),
        };
        let out = self.run(input, Some(&mut cache))?;
        self.cache = Some(cache);
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        self.run(input, None)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Attention" })?;
        let (n, t, d) = (cache.x.shape()[0], cache.x.shape()[1], cache.x.shape()[2]);
        let scale = 1.0 / (d as f32).sqrt();
        let mut grad_in = Tensor::zeros(cache.x.shape());
        let mut dwq = Tensor::zeros(&[d, d]);
        let mut dwk = Tensor::zeros(&[d, d]);
        let mut dwv = Tensor::zeros(&[d, d]);
        let mut dwo = Tensor::zeros(&[d, d]);
        for ni in 0..n {
            let x = cache.x.sample(ni)?;
            let dy = grad_output.sample(ni)?; // [t, d]
            let (q, k, v, a, o) = (
                &cache.q[ni],
                &cache.k[ni],
                &cache.v[ni],
                &cache.a[ni],
                &cache.o[ni],
            );
            // y = o Wo
            dwo.add_in_place(&o.matmul_tn(&dy)?)?;
            let d_o = dy.matmul_nt(&self.wo.value)?; // [t, d]
                                                     // o = a v
            let d_a = d_o.matmul_nt(v)?; // [t, t]
            let d_v = a.matmul_tn(&d_o)?; // [t, d]
                                          // a = softmax(s)
            let d_s = softmax_rows_backward(a, &d_a).scale(scale);
            // s = q kᵀ
            let d_q = d_s.matmul(k)?;
            let d_k = d_s.matmul_tn(&q.clone())?; // d_sᵀ q : [t, d]
                                                  // q = x Wq, k = x Wk, v = x Wv
            dwq.add_in_place(&x.matmul_tn(&d_q)?)?;
            dwk.add_in_place(&x.matmul_tn(&d_k)?)?;
            dwv.add_in_place(&x.matmul_tn(&d_v)?)?;
            let mut dx = d_q.matmul_nt(&self.wq.value)?;
            dx.add_in_place(&d_k.matmul_nt(&self.wk.value)?)?;
            dx.add_in_place(&d_v.matmul_nt(&self.wv.value)?)?;
            grad_in.data_mut()[ni * t * d..(ni + 1) * t * d].copy_from_slice(dx.data());
        }
        self.wq.grad.add_in_place(&dwq)?;
        self.wk.grad.add_in_place(&dwk)?;
        self.wv.grad.add_in_place(&dwv)?;
        self.wo.grad.add_in_place(&dwo)?;
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.wq.visit(f);
        self.wk.visit(f);
        self.wv.visit(f);
        self.wo.visit(f);
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        self.wq.visit_shared(f);
        self.wk.visit_shared(f);
        self.wv.visit_shared(f);
        self.wo.visit_shared(f);
    }

    fn name(&self) -> &'static str {
        "Attention"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sums_to_one() {
        let s = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let a = softmax_rows(&s);
        for i in 0..2 {
            let sum: f32 = a.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_neg_infinity_mask() {
        let s = Tensor::from_vec(vec![1.0, f32::NEG_INFINITY], &[1, 2]).unwrap();
        let a = softmax_rows(&s);
        assert!((a.data()[0] - 1.0).abs() < 1e-6);
        assert_eq!(a.data()[1], 0.0);
    }

    #[test]
    fn patch_embed_shapes() {
        let mut rng = Rng::new(0);
        let mut pe = PatchEmbed::new(3, 8, 4, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let tokens = pe.forward(&x, Mode::Train).unwrap();
        assert_eq!(tokens.shape(), &[2, 16, 8]);
        let gx = pe.backward(&Tensor::ones(&[2, 16, 8])).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn token_permutation_round_trip() {
        let mut rng = Rng::new(1);
        let feat = Tensor::randn(&[2, 4, 3, 3], &mut rng);
        let tokens = PatchEmbed::to_tokens(&feat);
        let restored = PatchEmbed::to_maps(&tokens, 3, 3);
        assert_eq!(feat, restored);
    }

    #[test]
    fn attention_forward_shape() {
        let mut rng = Rng::new(2);
        let mut attn = Attention::new(8, &mut rng);
        let x = Tensor::randn(&[2, 9, 8], &mut rng);
        let y = attn.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 9, 8]);
    }

    #[test]
    fn attention_gradient_finite_difference() {
        let mut rng = Rng::new(3);
        let mut attn = Attention::new(4, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], &mut rng);
        let y = attn.forward(&x, Mode::Train).unwrap();
        let go = y.map(|v| 2.0 * v);
        let gx = attn.backward(&go).unwrap();
        let eps = 1e-2;
        let mut x2 = x.clone();
        for flat in 0..x.len() {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let lp = attn.forward(&x2, Mode::Eval).unwrap().norm_sq();
            x2.data_mut()[flat] = orig - eps;
            let lm = attn.forward(&x2, Mode::Eval).unwrap().norm_sq();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[flat]).abs() < 0.05 * (1.0 + num.abs()),
                "flat={flat}: {num} vs {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn attention_weight_gradient_finite_difference() {
        let mut rng = Rng::new(4);
        let mut attn = Attention::new(4, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], &mut rng);
        let y = attn.forward(&x, Mode::Train).unwrap();
        attn.backward(&y.map(|v| 2.0 * v)).unwrap();
        let analytic = attn.wq.grad.clone();
        let eps = 1e-2;
        for &flat in &[0usize, 5, 15] {
            let orig = attn.wq.value.data()[flat];
            attn.wq.value.data_mut()[flat] = orig + eps;
            let lp = attn.forward(&x, Mode::Eval).unwrap().norm_sq();
            attn.wq.value.data_mut()[flat] = orig - eps;
            let lm = attn.forward(&x, Mode::Eval).unwrap().norm_sq();
            attn.wq.value.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[flat]).abs() < 0.05 * (1.0 + num.abs()),
                "flat={flat}: {num} vs {}",
                analytic.data()[flat]
            );
        }
    }

    #[test]
    fn windowed_attention_blocks_cross_window() {
        let mut rng = Rng::new(5);
        // 4x4 token grid, 2x2 windows: token 0 and token 15 are in
        // different windows, so changing token 15 must not affect token 0's
        // output row.
        let mut attn = Attention::windowed(4, 2, &mut rng);
        let x1 = Tensor::randn(&[1, 16, 4], &mut rng);
        let mut x2 = x1.clone();
        for di in 0..4 {
            let idx = 15 * 4 + di;
            x2.data_mut()[idx] += 5.0;
        }
        let y1 = attn.forward(&x1, Mode::Eval).unwrap();
        let y2 = attn.forward(&x2, Mode::Eval).unwrap();
        for di in 0..4 {
            assert!((y1.data()[di] - y2.data()[di]).abs() < 1e-6);
        }
    }

    #[test]
    fn windowed_attention_requires_square_grid() {
        let mut rng = Rng::new(6);
        let mut attn = Attention::windowed(4, 2, &mut rng);
        let x = Tensor::randn(&[1, 5, 4], &mut rng);
        assert!(attn.forward(&x, Mode::Eval).is_err());
    }
}
