use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use bprom_tensor::{avgpool2d, avgpool2d_backward, maxpool2d, maxpool2d_backward, Tensor};

/// Max pooling with a square window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input shape)
}

impl MaxPool2d {
    /// Creates max pooling with window `kernel` and step `stride`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (out, arg) = maxpool2d(input, self.kernel, self.stride)?;
        if mode.caches() {
            self.cache = Some((arg, input.shape().to_vec()));
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        let (out, _arg) = maxpool2d(input, self.kernel, self.stride)?;
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (arg, shape) = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "MaxPool2d" })?;
        Ok(maxpool2d_backward(grad_output, arg, shape)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Average pooling with a square window.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates average pooling with window `kernel` and step `stride`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        AvgPool2d {
            kernel,
            stride,
            cached_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.forward_eval(input)?;
        if mode.caches() {
            self.cached_shape = Some(input.shape().to_vec());
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        Ok(avgpool2d(input, self.kernel, self.stride)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "AvgPool2d" })?;
        Ok(avgpool2d_backward(
            grad_output,
            shape,
            self.kernel,
            self.stride,
        )?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.forward_eval(input)?;
        if mode.caches() {
            self.cached_shape = Some(input.shape().to_vec());
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!("GlobalAvgPool expects rank 4, got {:?}", input.shape()),
            }));
        }
        let (n, c) = (input.shape()[0], input.shape()[1]);
        let plane = input.shape()[2] * input.shape()[3];
        let mut out = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                out.data_mut()[ni * c + ci] =
                    input.data()[base..base + plane].iter().sum::<f32>() / plane as f32;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "GlobalAvgPool",
            })?;
        let (n, c) = (shape[0], shape[1]);
        let plane = shape[2] * shape[3];
        let inv = 1.0 / plane as f32;
        let mut grad_in = Tensor::zeros(shape);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_output.data()[ni * c + ci] * inv;
                let base = (ni * c + ci) * plane;
                for v in &mut grad_in.data_mut()[base..base + plane] {
                    *v = g;
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_tensor::Rng;

    #[test]
    fn maxpool_layer_round_trip() {
        let mut rng = Rng::new(0);
        let mut l = MaxPool2d::new(2, 2);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        let gx = l.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
        // Exactly one gradient unit per output element.
        assert_eq!(gx.sum(), 8.0);
    }

    #[test]
    fn global_avg_pool_values() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let mut l = GlobalAvgPool::new();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
        let gx = l
            .backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avgpool_layer_gradient_shape() {
        let mut rng = Rng::new(1);
        let mut l = AvgPool2d::new(2, 2);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[2, 3, 3, 3]);
        let gx = l.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn backward_before_forward_errors() {
        assert!(MaxPool2d::new(2, 2)
            .backward(&Tensor::ones(&[1, 1, 1, 1]))
            .is_err());
        assert!(GlobalAvgPool::new()
            .backward(&Tensor::ones(&[1, 1]))
            .is_err());
    }
}
