use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use bprom_tensor::Tensor;

macro_rules! pointwise_activation {
    ($(#[$doc:meta])* $name:ident, $fwd:expr, $bwd_from_in:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            cached_input: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self { cached_input: None }
            }
        }

        impl Layer for $name {
            fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
                if mode.caches() {
                    self.cached_input = Some(input.clone());
                }
                self.forward_eval(input)
            }

            fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
                Ok(input.map($fwd))
            }

            fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
                let input = self.cached_input.as_ref().ok_or(
                    NnError::BackwardBeforeForward {
                        layer: stringify!($name),
                    },
                )?;
                Ok(input.zip_map(grad_output, |x, g| g * ($bwd_from_in)(x))?)
            }

            fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

            fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

            fn name(&self) -> &'static str {
                stringify!($name)
            }
        }
    };
}

pointwise_activation!(
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    |x| if x > 0.0 { x } else { 0.0 },
    |x: f32| if x > 0.0 { 1.0 } else { 0.0 }
);

pointwise_activation!(
    /// Leaky ReLU with fixed negative slope 0.1.
    LeakyRelu,
    |x| if x > 0.0 { x } else { 0.1 * x },
    |x: f32| if x > 0.0 { 1.0 } else { 0.1 }
);

pointwise_activation!(
    /// Hyperbolic tangent.
    Tanh,
    |x: f32| x.tanh(),
    |x: f32| 1.0 - x.tanh() * x.tanh()
);

pointwise_activation!(
    /// Gaussian error linear unit (tanh approximation), used in the
    /// transformer models.
    Gelu,
    gelu_forward,
    gelu_derivative
);

fn gelu_forward(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_derivative(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_tensor::Rng;

    fn finite_diff_check<L: Layer>(layer: &mut L, seed: u64) {
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[2, 5], &mut rng);
        layer.forward(&x, Mode::Train).unwrap();
        let gx = layer.backward(&Tensor::ones(&[2, 5])).unwrap();
        let eps = 1e-3;
        let mut x2 = x.clone();
        for flat in 0..x.len() {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let lp = layer.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig - eps;
            let lm = layer.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[flat]).abs() < 1e-2,
                "flat={flat}: {num} vs {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn relu_forward_values() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient() {
        finite_diff_check(&mut Relu::new(), 1);
    }

    #[test]
    fn leaky_relu_gradient() {
        finite_diff_check(&mut LeakyRelu::new(), 2);
    }

    #[test]
    fn tanh_gradient() {
        finite_diff_check(&mut Tanh::new(), 3);
    }

    #[test]
    fn gelu_gradient() {
        finite_diff_check(&mut Gelu::new(), 4);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0; GELU(large) ≈ identity; GELU(-large) ≈ 0.
        assert!(gelu_forward(0.0).abs() < 1e-7);
        assert!((gelu_forward(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu_forward(-10.0).abs() < 1e-3);
    }

    #[test]
    fn activations_have_no_params() {
        let mut l = Relu::new();
        assert_eq!(l.param_count(), 0);
    }
}
