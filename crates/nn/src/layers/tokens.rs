//! Shape adapters between token tensors `[n, t, d]` and row-major matrices
//! `[n*t, d]`, plus token pooling. These let [`crate::Dense`] serve as a
//! per-token MLP inside the transformer models.

use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use bprom_tensor::Tensor;

/// Folds `[n, t, d]` into `[n*t, d]` so per-token layers can treat tokens
/// as batch entries.
#[derive(Debug, Clone, Default)]
pub struct FoldTokens {
    cached_shape: Option<Vec<usize>>,
}

impl FoldTokens {
    /// Creates the fold adapter.
    pub fn new() -> Self {
        FoldTokens { cached_shape: None }
    }
}

impl Layer for FoldTokens {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.forward_eval(input)?;
        if mode.caches() {
            self.cached_shape = Some(input.shape().to_vec());
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 3 {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!("FoldTokens expects [n, t, d], got {:?}", input.shape()),
            }));
        }
        let (n, t, d) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        Ok(input.reshape(&[n * t, d])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "FoldTokens",
            })?;
        Ok(grad_output.reshape(shape)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "FoldTokens"
    }
}

/// Unfolds `[n*t, d]` back into `[n, t, d]` for a fixed token count `t`.
#[derive(Debug, Clone)]
pub struct UnfoldTokens {
    tokens: usize,
}

impl UnfoldTokens {
    /// Creates the unfold adapter for `tokens` tokens per sample.
    pub fn new(tokens: usize) -> Self {
        UnfoldTokens { tokens }
    }
}

impl Layer for UnfoldTokens {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.forward_eval(input)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 2 || input.shape()[0] % self.tokens != 0 {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!(
                    "UnfoldTokens({}) expects [n*{}, d], got {:?}",
                    self.tokens,
                    self.tokens,
                    input.shape()
                ),
            }));
        }
        let n = input.shape()[0] / self.tokens;
        let d = input.shape()[1];
        Ok(input.reshape(&[n, self.tokens, d])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (n, t, d) = (
            grad_output.shape()[0],
            grad_output.shape()[1],
            grad_output.shape()[2],
        );
        Ok(grad_output.reshape(&[n * t, d])?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "UnfoldTokens"
    }
}

/// Mean-pools tokens: `[n, t, d] → [n, d]`. The transformer models use this
/// in place of a CLS token.
#[derive(Debug, Clone, Default)]
pub struct TokenMeanPool {
    cached_shape: Option<Vec<usize>>,
}

impl TokenMeanPool {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        TokenMeanPool { cached_shape: None }
    }
}

impl Layer for TokenMeanPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.forward_eval(input)?;
        if mode.caches() {
            self.cached_shape = Some(input.shape().to_vec());
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 3 {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!("TokenMeanPool expects [n, t, d], got {:?}", input.shape()),
            }));
        }
        let (n, t, d) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let mut out = Tensor::zeros(&[n, d]);
        for ni in 0..n {
            for ti in 0..t {
                let base = (ni * t + ti) * d;
                for di in 0..d {
                    out.data_mut()[ni * d + di] += input.data()[base + di];
                }
            }
        }
        out.scale_in_place(1.0 / t as f32);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "TokenMeanPool",
            })?;
        let (n, t, d) = (shape[0], shape[1], shape[2]);
        let inv = 1.0 / t as f32;
        let mut grad_in = Tensor::zeros(shape);
        for ni in 0..n {
            for ti in 0..t {
                let base = (ni * t + ti) * d;
                for di in 0..d {
                    grad_in.data_mut()[base + di] = grad_output.data()[ni * d + di] * inv;
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "TokenMeanPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_tensor::Rng;

    #[test]
    fn fold_unfold_round_trip() {
        let mut rng = Rng::new(0);
        let x = Tensor::randn(&[2, 3, 4], &mut rng);
        let mut fold = FoldTokens::new();
        let mut unfold = UnfoldTokens::new(3);
        let folded = fold.forward(&x, Mode::Train).unwrap();
        assert_eq!(folded.shape(), &[6, 4]);
        let restored = unfold.forward(&folded, Mode::Train).unwrap();
        assert_eq!(restored, x);
    }

    #[test]
    fn mean_pool_values_and_gradient() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let mut pool = TokenMeanPool::new();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[2.0, 3.0]);
        let gx = pool
            .backward(&Tensor::from_vec(vec![2.0, 4.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(gx.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn wrong_rank_rejected() {
        let mut fold = FoldTokens::new();
        assert!(fold.forward(&Tensor::zeros(&[2, 2]), Mode::Eval).is_err());
        let mut unfold = UnfoldTokens::new(3);
        assert!(unfold.forward(&Tensor::zeros(&[4, 2]), Mode::Eval).is_err());
    }
}
