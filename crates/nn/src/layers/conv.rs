use crate::layer::{Layer, Mode, Param};
use crate::{init, NnError, Result};
use bprom_tensor::{conv2d, conv2d_backward_input, conv2d_backward_weight, Rng, Tensor};

/// 2-D convolution layer over NCHW input, with bias.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with a square `kernel`, Kaiming init, zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(init::kaiming(
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    fn add_bias(&self, out: &mut Tensor) {
        let (n, o) = (out.shape()[0], out.shape()[1]);
        let hw = out.shape()[2] * out.shape()[3];
        let b = self.bias.value.data().to_vec();
        let data = out.data_mut();
        for ni in 0..n {
            for oi in 0..o {
                let base = (ni * o + oi) * hw;
                let bv = b[oi];
                for v in &mut data[base..base + hw] {
                    *v += bv;
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.forward_eval(input)?;
        if mode.caches() {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        let mut out = conv2d(input, &self.weight.value, self.stride, self.padding)?;
        self.add_bias(&mut out);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Conv2d" })?;
        let dw = conv2d_backward_weight(
            input,
            grad_output,
            (self.kernel, self.kernel),
            self.stride,
            self.padding,
        )?;
        self.weight.grad.add_in_place(&dw)?;
        // Bias gradient: sum over batch and spatial dims.
        let (n, o) = (grad_output.shape()[0], grad_output.shape()[1]);
        let hw = grad_output.shape()[2] * grad_output.shape()[3];
        let gb = self.bias.grad.data_mut();
        for ni in 0..n {
            for oi in 0..o {
                let base = (ni * o + oi) * hw;
                gb[oi] += grad_output.data()[base..base + hw].iter().sum::<f32>();
            }
        }
        Ok(conv2d_backward_input(
            &self.weight.value,
            grad_output,
            input.shape(),
            self.stride,
            self.padding,
        )?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.weight.visit(f);
        self.bias.visit(f);
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        self.weight.visit_shared(f);
        self.bias.visit_shared(f);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// Depthwise 2-D convolution: each input channel is convolved with its own
/// single-channel kernel (`groups == channels`), as in MobileNet.
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    /// One `[1, 1, k, k]`-shaped kernel per channel, stored `[c, k, k]`.
    weight: Param,
    bias: Param,
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with a square `kernel`.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = kernel * kernel;
        DepthwiseConv2d {
            weight: Param::new(init::kaiming(&[channels, kernel, kernel], fan_in, rng)),
            bias: Param::new(Tensor::zeros(&[channels])),
            channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Gathers channel `c` of every sample into a `[n, 1, h, w]` batch,
    /// so each channel runs through the batched conv kernels once
    /// instead of once per sample.
    fn channel_batch(t: &Tensor, c: usize) -> Tensor {
        let (n, ch, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
        let hw = h * w;
        let mut out = vec![0.0f32; n * hw];
        for ni in 0..n {
            let base = (ni * ch + c) * hw;
            out[ni * hw..(ni + 1) * hw].copy_from_slice(&t.data()[base..base + hw]);
        }
        Tensor::from_vec(out, &[n, 1, h, w])
            .expect("channel batch shape is consistent by construction")
    }

    /// Inverse of [`Self::channel_batch`]: adds a `[n, 1, h, w]` batch
    /// into channel `c` of an `[n, ch, h, w]` accumulator.
    fn scatter_channel(acc: &mut Tensor, src: &Tensor, c: usize) {
        let (n, ch, h, w) = (
            acc.shape()[0],
            acc.shape()[1],
            acc.shape()[2],
            acc.shape()[3],
        );
        let hw = h * w;
        for ni in 0..n {
            let base = (ni * ch + c) * hw;
            for (a, &s) in acc.data_mut()[base..base + hw]
                .iter_mut()
                .zip(&src.data()[ni * hw..(ni + 1) * hw])
            {
                *a += s;
            }
        }
    }

    fn kernel_tensor(&self, c: usize) -> Tensor {
        let k = self.kernel;
        Tensor::from_vec(
            self.weight.value.data()[c * k * k..(c + 1) * k * k].to_vec(),
            &[1, 1, k, k],
        )
        .expect("kernel slice shape is consistent by construction")
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.forward_eval(input)?;
        if mode.caches() {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 || input.shape()[1] != self.channels {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!(
                    "DepthwiseConv2d expects [n, {}, h, w], got {:?}",
                    self.channels,
                    input.shape()
                ),
            }));
        }
        let n = input.shape()[0];
        let mut out: Option<Tensor> = None;
        for ci in 0..self.channels {
            let x = Self::channel_batch(input, ci);
            let w = self.kernel_tensor(ci);
            let mut y = conv2d(&x, &w, self.stride, self.padding)?;
            let bv = self.bias.value.data()[ci];
            y.map_in_place(|v| v + bv);
            let (oh, ow) = (y.shape()[2], y.shape()[3]);
            let dst = out.get_or_insert_with(|| Tensor::zeros(&[n, self.channels, oh, ow]));
            let hw = oh * ow;
            for ni in 0..n {
                let base = (ni * self.channels + ci) * hw;
                dst.data_mut()[base..base + hw].copy_from_slice(&y.data()[ni * hw..(ni + 1) * hw]);
            }
        }
        out.ok_or_else(|| {
            NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: "DepthwiseConv2d requires at least one channel".to_string(),
            })
        })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "DepthwiseConv2d",
            })?;
        let n = input.shape()[0];
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let k = self.kernel;
        let mut grad_in = Tensor::zeros(input.shape());
        for ci in 0..self.channels {
            let x = Self::channel_batch(input, ci);
            let go = Self::channel_batch(grad_output, ci);
            let wt = self.kernel_tensor(ci);
            let dw = conv2d_backward_weight(&x, &go, (k, k), self.stride, self.padding)?;
            for (g, &d) in self.weight.grad.data_mut()[ci * k * k..(ci + 1) * k * k]
                .iter_mut()
                .zip(dw.data())
            {
                *g += d;
            }
            self.bias.grad.data_mut()[ci] += go.sum();
            let dx = conv2d_backward_input(&wt, &go, &[n, 1, h, w], self.stride, self.padding)?;
            Self::scatter_channel(&mut grad_in, &dx, ci);
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.weight.visit(f);
        self.bias.visit(f);
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        self.weight.visit_shared(f);
        self.bias.visit_shared(f);
    }

    fn name(&self) -> &'static str {
        "DepthwiseConv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_forward_shape() {
        let mut rng = Rng::new(0);
        let mut layer = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
        let mut strided = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        let y2 = strided.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y2.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv_bias_shifts_output() {
        let mut rng = Rng::new(1);
        let mut layer = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        layer.weight.value = Tensor::zeros(&[1, 1, 1, 1]);
        layer.bias.value = Tensor::from_vec(vec![3.5], &[1]).unwrap();
        let x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert!(y.data().iter().all(|&v| (v - 3.5).abs() < 1e-6));
    }

    #[test]
    fn conv_gradient_finite_difference() {
        let mut rng = Rng::new(2);
        let mut layer = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        layer.forward(&x, Mode::Train).unwrap();
        let go = Tensor::ones(&[1, 3, 6, 6]);
        let gx = layer.backward(&go).unwrap();
        assert_eq!(gx.shape(), x.shape());
        let eps = 1e-2;
        let mut x2 = x.clone();
        for &flat in &[0usize, 20, 71] {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let lp = layer.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig - eps;
            let lm = layer.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[flat]).abs() < 2e-2, "flat {flat}");
        }
    }

    #[test]
    fn depthwise_forward_is_per_channel() {
        let mut rng = Rng::new(3);
        let mut layer = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng);
        // Zero out channel 1's kernel: its output must be exactly the bias.
        for v in layer.weight.value.data_mut()[9..18].iter_mut() {
            *v = 0.0;
        }
        layer.bias.value.data_mut()[1] = 7.0;
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 2, 5, 5]);
        for i in 25..50 {
            assert!((y.data()[i] - 7.0).abs() < 1e-6);
        }
    }

    #[test]
    fn depthwise_gradient_finite_difference() {
        let mut rng = Rng::new(4);
        let mut layer = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        layer.forward(&x, Mode::Train).unwrap();
        let go = Tensor::ones(&[1, 2, 5, 5]);
        let gx = layer.backward(&go).unwrap();
        let eps = 1e-2;
        let mut x2 = x.clone();
        for &flat in &[0usize, 13, 37, 49] {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let lp = layer.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig - eps;
            let lm = layer.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[flat]).abs() < 2e-2, "flat {flat}");
        }
    }

    #[test]
    fn depthwise_rejects_wrong_channels() {
        let mut rng = Rng::new(5);
        let mut layer = DepthwiseConv2d::new(3, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 5, 5]);
        assert!(layer.forward(&x, Mode::Eval).is_err());
    }
}
