use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use bprom_tensor::Tensor;

/// Flattens `[n, ...]` to `[n, prod(...)]`, preserving the batch axis.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.forward_eval(input)?;
        if mode.caches() {
            self.cached_shape = Some(input.shape().to_vec());
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() < 2 {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!("Flatten expects rank >= 2, got {:?}", input.shape()),
            }));
        }
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        Ok(input.reshape(&[n, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Flatten" })?;
        Ok(grad_output.reshape(shape)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let mut l = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let gx = l.backward(&Tensor::ones(&[2, 60])).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn rank1_rejected() {
        let mut l = Flatten::new();
        assert!(l.forward(&Tensor::zeros(&[5]), Mode::Eval).is_err());
    }
}
