use crate::layer::{Layer, Mode, Param};
use crate::{NnError, Result};
use bprom_tensor::Tensor;

const EPS: f32 = 1e-5;

/// Batch normalization over the channel axis of NCHW input.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates; eval mode uses the running estimates.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
    /// Whether the forward pass used frozen (running) statistics; the
    /// backward formula then treats mean/var as constants.
    frozen: bool,
}

impl BatchNorm2d {
    /// Creates batch normalization for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            channels,
            cache: None,
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.rank() != 4 || input.shape()[1] != self.channels {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!(
                    "BatchNorm2d expects [n, {}, h, w], got {:?}",
                    self.channels,
                    input.shape()
                ),
            }));
        }
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Eval {
            // Delegating keeps train/eval arithmetic bit-identical.
            return self.forward_eval(input);
        }
        self.check_input(input)?;
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut out = Tensor::zeros(input.shape());
        let mut x_hat = Tensor::zeros(input.shape());
        let mut inv_stds = vec![0.0f32; c];
        for ci in 0..c {
            let (mean, var) = match mode {
                Mode::Frozen | Mode::Eval => (self.running_mean[ci], self.running_var[ci]),
                Mode::Train => {
                    let mut sum = 0.0f32;
                    let mut sq = 0.0f32;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        for &v in &input.data()[base..base + plane] {
                            sum += v;
                            sq += v * v;
                        }
                    }
                    let mean = sum / count;
                    let var = (sq / count - mean * mean).max(0.0);
                    self.running_mean[ci] =
                        (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                    self.running_var[ci] =
                        (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                    (mean, var)
                }
            };
            let inv_std = 1.0 / (var + EPS).sqrt();
            inv_stds[ci] = inv_std;
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let xh = (input.data()[i] - mean) * inv_std;
                    x_hat.data_mut()[i] = xh;
                    out.data_mut()[i] = g * xh + b;
                }
            }
        }
        if mode.caches() {
            self.cache = Some(BnCache {
                x_hat,
                inv_std: inv_stds,
                input_shape: input.shape().to_vec(),
                frozen: mode == Mode::Frozen,
            });
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        let (n, c) = (input.shape()[0], input.shape()[1]);
        let plane = input.shape()[2] * input.shape()[3];
        let mut out = Tensor::zeros(input.shape());
        for ci in 0..c {
            let (mean, var) = (self.running_mean[ci], self.running_var[ci]);
            let inv_std = 1.0 / (var + EPS).sqrt();
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    // Same operation order as `forward` so results stay
                    // bit-identical between the mutable and shared paths.
                    let xh = (input.data()[i] - mean) * inv_std;
                    out.data_mut()[i] = g * xh + b;
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::BackwardBeforeForward {
            layer: "BatchNorm2d",
        })?;
        let shape = &cache.input_shape;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut grad_in = Tensor::zeros(grad_output.shape());
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let inv_std = cache.inv_std[ci];
            // Accumulate sums for the batch-norm backward formula.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let dy = grad_output.data()[i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[i];
                }
            }
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;
            self.beta.grad.data_mut()[ci] += sum_dy;
            if cache.frozen {
                // Frozen statistics are constants: dx = gamma * inv_std * dy.
                let scale = g * inv_std;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for i in base..base + plane {
                        grad_in.data_mut()[i] = scale * grad_output.data()[i];
                    }
                }
            } else {
                // dx = gamma*inv_std/count * (count*dy - sum_dy - x_hat*sum_dy_xhat)
                let scale = g * inv_std / count;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for i in base..base + plane {
                        let dy = grad_output.data()[i];
                        let xh = cache.x_hat.data()[i];
                        grad_in.data_mut()[i] = scale * (count * dy - sum_dy - xh * sum_dy_xhat);
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.gamma.visit(f);
        self.beta.visit(f);
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        self.gamma.visit_shared(f);
        self.beta.visit_shared(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn visit_buffers_shared(&self, f: &mut dyn FnMut(&[f32])) {
        f(&self.running_mean);
        f(&self.running_var);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

/// Layer normalization over the last axis of `[n, t, d]` token tensors,
/// with learned per-feature scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    dim: usize,
    cache: Option<LnCache>,
}

#[derive(Debug, Clone)]
struct LnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates layer normalization over feature width `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Tensor::ones(&[dim])),
            beta: Param::new(Tensor::zeros(&[dim])),
            dim,
            cache: None,
        }
    }

    /// Shared normalization kernel: returns `(out, x_hat, inv_stds)` so
    /// the caching and cache-free paths compute identical outputs.
    fn normalize(&self, input: &Tensor) -> Result<(Tensor, Tensor, Vec<f32>)> {
        let d = self.dim;
        if input.len() % d != 0 || *input.shape().last().unwrap_or(&0) != d {
            return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
                reason: format!(
                    "LayerNorm({d}) expects trailing dim {d}, got {:?}",
                    input.shape()
                ),
            }));
        }
        let rows = input.len() / d;
        let mut out = Tensor::zeros(input.shape());
        let mut x_hat = Tensor::zeros(input.shape());
        let mut inv_stds = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &input.data()[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + EPS).sqrt();
            inv_stds[r] = inv_std;
            for i in 0..d {
                let xh = (row[i] - mean) * inv_std;
                x_hat.data_mut()[r * d + i] = xh;
                out.data_mut()[r * d + i] =
                    self.gamma.value.data()[i] * xh + self.beta.value.data()[i];
            }
        }
        Ok((out, x_hat, inv_stds))
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (out, x_hat, inv_stds) = self.normalize(input)?;
        if mode.caches() {
            self.cache = Some(LnCache {
                x_hat,
                inv_std: inv_stds,
            });
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        let (out, _, _) = self.normalize(input)?;
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "LayerNorm" })?;
        let d = self.dim;
        let rows = grad_output.len() / d;
        let mut grad_in = Tensor::zeros(grad_output.shape());
        for r in 0..rows {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for i in 0..d {
                let dy = grad_output.data()[r * d + i] * self.gamma.value.data()[i];
                let xh = cache.x_hat.data()[r * d + i];
                sum_dy += dy;
                sum_dy_xhat += dy * xh;
            }
            let inv_std = cache.inv_std[r];
            for i in 0..d {
                let dy = grad_output.data()[r * d + i] * self.gamma.value.data()[i];
                let xh = cache.x_hat.data()[r * d + i];
                grad_in.data_mut()[r * d + i] =
                    inv_std / d as f32 * (d as f32 * dy - sum_dy - xh * sum_dy_xhat);
            }
        }
        for i in 0..d {
            let mut gg = 0.0f32;
            let mut gb = 0.0f32;
            for r in 0..rows {
                gg += grad_output.data()[r * d + i] * cache.x_hat.data()[r * d + i];
                gb += grad_output.data()[r * d + i];
            }
            self.gamma.grad.data_mut()[i] += gg;
            self.beta.grad.data_mut()[i] += gb;
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.gamma.visit(f);
        self.beta.visit(f);
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        self.gamma.visit_shared(f);
        self.beta.visit_shared(f);
    }

    fn name(&self) -> &'static str {
        "LayerNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_tensor::Rng;

    #[test]
    fn batchnorm_train_normalizes() {
        let mut rng = Rng::new(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], &mut rng).map(|v| v * 3.0 + 2.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel output mean ≈ 0, var ≈ 1 (gamma=1, beta=0).
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for hi in 0..5 {
                    for wi in 0..5 {
                        vals.push(y.at(&[ni, ci, hi, wi]).unwrap());
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean={mean}");
            assert!((var - 1.0).abs() < 1e-2, "var={var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = Rng::new(1);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[8, 2, 4, 4], &mut rng);
        for _ in 0..50 {
            bn.forward(&x, Mode::Train).unwrap();
        }
        let y_train = bn.forward(&x, Mode::Train).unwrap();
        let y_eval = bn.forward(&x, Mode::Eval).unwrap();
        // After many passes on the same batch, running stats converge to the
        // batch stats, so eval output approaches train output.
        let diff: f32 = y_train
            .data()
            .iter()
            .zip(y_eval.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 0.1, "diff={diff}");
    }

    #[test]
    fn batchnorm_gradient_finite_difference() {
        let mut rng = Rng::new(2);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        // Use a quadratic loss so the gradient isn't trivially zero
        // (sum of normalized outputs is ~0 regardless of input).
        let y = bn.forward(&x, Mode::Train).unwrap();
        let go = y.map(|v| 2.0 * v); // d/dy of sum(y^2)
        let gx = bn.backward(&go).unwrap();
        let eps = 1e-2;
        let mut x2 = x.clone();
        for &flat in &[0usize, 9, 17, 35] {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let mut bn_p = BatchNorm2d::new(2);
            bn_p.gamma = bn.gamma.clone();
            bn_p.beta = bn.beta.clone();
            let lp = bn_p.forward(&x2, Mode::Train).unwrap().norm_sq();
            x2.data_mut()[flat] = orig - eps;
            let lm = bn_p.forward(&x2, Mode::Train).unwrap().norm_sq();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[flat]).abs() < 5e-2,
                "flat={flat}: {num} vs {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = Rng::new(3);
        let mut ln = LayerNorm::new(8);
        let x = Tensor::randn(&[2, 4, 8], &mut rng).map(|v| v * 5.0 - 1.0);
        let y = ln.forward(&x, Mode::Eval).unwrap();
        for r in 0..8 {
            let row = &y.data()[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_gradient_finite_difference() {
        let mut rng = Rng::new(4);
        let mut ln = LayerNorm::new(6);
        let x = Tensor::randn(&[2, 6], &mut rng);
        let y = ln.forward(&x, Mode::Train).unwrap();
        let go = y.map(|v| 2.0 * v);
        let gx = ln.backward(&go).unwrap();
        let eps = 1e-2;
        let mut x2 = x.clone();
        for flat in 0..x.len() {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let lp = ln.forward(&x2, Mode::Eval).unwrap().norm_sq();
            x2.data_mut()[flat] = orig - eps;
            let lm = ln.forward(&x2, Mode::Eval).unwrap().norm_sq();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[flat]).abs() < 5e-2,
                "flat={flat}: {num} vs {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn wrong_channel_count_is_error() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Eval)
            .is_err());
        let mut ln = LayerNorm::new(4);
        assert!(ln.forward(&Tensor::zeros(&[2, 5]), Mode::Eval).is_err());
    }
}
