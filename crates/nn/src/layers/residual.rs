use crate::layer::{Layer, Mode};
use crate::{Result, Sequential};
use bprom_tensor::Tensor;

/// Residual block: `y = body(x) + shortcut(x)`.
///
/// The shortcut is the identity when `None`; supply a projection (e.g. a
/// strided 1×1 convolution) when the body changes shape.
pub struct Residual {
    body: Sequential,
    shortcut: Option<Sequential>,
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("body_layers", &self.body.len())
            .field("has_projection", &self.shortcut.is_some())
            .finish()
    }
}

impl Residual {
    /// Creates an identity-shortcut residual block.
    pub fn new(body: Sequential) -> Self {
        Residual {
            body,
            shortcut: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_projection(body: Sequential, shortcut: Sequential) -> Self {
        Residual {
            body,
            shortcut: Some(shortcut),
        }
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let main = self.body.forward(input, mode)?;
        let skip = match &mut self.shortcut {
            Some(proj) => proj.forward(input, mode)?,
            None => input.clone(),
        };
        Ok(main.add_t(&skip)?)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        let main = self.body.forward_eval(input)?;
        let skip = match &self.shortcut {
            Some(proj) => proj.forward_eval(input)?,
            None => input.clone(),
        };
        Ok(main.add_t(&skip)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let g_main = self.body.backward(grad_output)?;
        let g_skip = match &mut self.shortcut {
            Some(proj) => proj.backward(grad_output)?,
            None => grad_output.clone(),
        };
        Ok(g_main.add_t(&g_skip)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.body.visit_params(f);
        if let Some(proj) = &mut self.shortcut {
            proj.visit_params(f);
        }
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        self.body.visit_params_shared(f);
        if let Some(proj) = &self.shortcut {
            proj.visit_params_shared(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.body.visit_buffers(f);
        if let Some(proj) = &mut self.shortcut {
            proj.visit_buffers(f);
        }
    }

    fn visit_buffers_shared(&self, f: &mut dyn FnMut(&[f32])) {
        self.body.visit_buffers_shared(f);
        if let Some(proj) = &self.shortcut {
            proj.visit_buffers_shared(f);
        }
    }

    fn name(&self) -> &'static str {
        "Residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Dense, Relu};
    use bprom_tensor::Rng;

    #[test]
    fn identity_shortcut_adds_input() {
        let mut rng = Rng::new(0);
        // Body that outputs all zeros: residual output must equal input.
        let mut zero_dense = Dense::new(4, 4, &mut rng);
        zero_dense.visit_params(&mut |p, _| p.map_in_place(|_| 0.0));
        let mut block = Residual::new(Sequential::new(vec![Box::new(zero_dense)]));
        let x = Tensor::randn(&[3, 4], &mut rng);
        let y = block.forward(&x, Mode::Eval).unwrap();
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_sums_both_paths() {
        let mut rng = Rng::new(1);
        let mut block = Residual::new(Sequential::new(vec![
            Box::new(Dense::new(4, 4, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 4, &mut rng)),
        ]));
        let x = Tensor::randn(&[2, 4], &mut rng);
        block.forward(&x, Mode::Train).unwrap();
        let gx = block.backward(&Tensor::ones(&[2, 4])).unwrap();
        let eps = 1e-2;
        let mut x2 = x.clone();
        for flat in 0..x.len() {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let lp = block.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig - eps;
            let lm = block.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[flat]).abs() < 2e-2,
                "flat={flat}: {num} vs {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn projection_shortcut_handles_shape_change() {
        let mut rng = Rng::new(2);
        let body = Sequential::new(vec![Box::new(Conv2d::new(2, 4, 3, 2, 1, &mut rng))]);
        let proj = Sequential::new(vec![Box::new(Conv2d::new(2, 4, 1, 2, 0, &mut rng))]);
        let mut block = Residual::with_projection(body, proj);
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
        let gx = block.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }
}
