use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use bprom_tensor::{Rng, Tensor};

/// Inverted dropout: zeroes each element with probability `p` during
/// training and rescales survivors by `1/(1-p)`; identity in eval mode.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Rng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates dropout with drop probability `p ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `p` is outside `[0, 1)`.
    pub fn new(p: f32, rng: &mut Rng) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig {
                reason: format!("dropout probability must be in [0, 1), got {p}"),
            });
        }
        Ok(Dropout {
            p,
            rng: rng.fork(),
            cached_mask: None,
        })
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Eval => Ok(input.clone()),
            Mode::Frozen => {
                // Frozen pass: dropout inactive, but cache an identity mask
                // so a subsequent backward is well-defined.
                self.cached_mask = Some(Tensor::ones(input.shape()));
                Ok(input.clone())
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mut mask = Tensor::zeros(input.shape());
                for m in mask.data_mut() {
                    *m = if self.rng.bernoulli(keep) { scale } else { 0.0 };
                }
                let out = input.mul_t(&mask)?;
                self.cached_mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.clone())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Dropout" })?;
        Ok(grad_output.mul_t(mask)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_shared(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut rng = Rng::new(0);
        let mut l = Dropout::new(0.5, &mut rng).unwrap();
        let x = Tensor::ones(&[10, 10]);
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut rng = Rng::new(1);
        let mut l = Dropout::new(0.3, &mut rng).unwrap();
        let x = Tensor::ones(&[100, 100]);
        let y = l.forward(&x, Mode::Train).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = Rng::new(2);
        let mut l = Dropout::new(0.5, &mut rng).unwrap();
        let x = Tensor::ones(&[4, 4]);
        let y = l.forward(&x, Mode::Train).unwrap();
        let gx = l.backward(&Tensor::ones(&[4, 4])).unwrap();
        // Gradient is zero exactly where the forward output was zero.
        for (o, g) in y.data().iter().zip(gx.data()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn invalid_p_rejected() {
        let mut rng = Rng::new(3);
        assert!(Dropout::new(1.0, &mut rng).is_err());
        assert!(Dropout::new(-0.1, &mut rng).is_err());
    }
}
