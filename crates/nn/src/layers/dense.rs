use crate::layer::{Layer, Mode, Param};
use crate::{init, NnError, Result};
use bprom_tensor::{Rng, Tensor};

/// Fully connected layer: `y = x Wᵀ + b` with `W: [out, in]`.
///
/// Accepts rank-2 input `[batch, in]`. For image tensors, precede with
/// [`crate::Flatten`].
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-initialized weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Dense {
            weight: Param::new(init::kaiming(
                &[out_features, in_features],
                in_features,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read-only access to the weight matrix (for tests/inspection).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.forward_eval(input)?;
        if mode.caches() {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        let mut out = input.matmul_nt(&self.weight.value)?;
        let b = self.bias.value.data();
        for row in 0..out.shape()[0] {
            let o = &mut out.data_mut()[row * self.out_features..(row + 1) * self.out_features];
            for (v, &bv) in o.iter_mut().zip(b) {
                *v += bv;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Dense" })?;
        // dW = goᵀ x : [out, batch] x [batch, in]
        let dw = grad_output.matmul_tn(input)?;
        self.weight.grad.add_in_place(&dw)?;
        // db = column sums of go
        let n = grad_output.shape()[0];
        let gb = self.bias.grad.data_mut();
        for row in 0..n {
            let go = &grad_output.data()[row * self.out_features..(row + 1) * self.out_features];
            for (g, &v) in gb.iter_mut().zip(go) {
                *g += v;
            }
        }
        // dx = go W : [batch, out] x [out, in]
        Ok(grad_output.matmul(&self.weight.value)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.weight.visit(f);
        self.bias.visit(f);
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        self.weight.visit_shared(f);
        self.bias.visit_shared(f);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Rng::new(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        layer.bias.value = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        layer.weight.value = Tensor::zeros(&[2, 3]);
        let x = Tensor::ones(&[4, 3]);
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.at(&[0, 0]).unwrap(), 10.0);
        assert_eq!(y.at(&[3, 1]).unwrap(), 20.0);
    }

    #[test]
    fn backward_before_forward_is_error() {
        let mut rng = Rng::new(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        let g = Tensor::ones(&[1, 2]);
        assert!(matches!(
            layer.backward(&g),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng::new(1);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        // Loss = sum(y); dL/dy = 1.
        let y = layer.forward(&x, Mode::Train).unwrap();
        let go = Tensor::ones(y.shape());
        let gx = layer.backward(&go).unwrap();
        let eps = 1e-2;

        // Weight gradient check.
        let mut wgrads = Vec::new();
        layer.visit_params(&mut |_, g| wgrads.push(g.clone()));
        for &flat in &[0usize, 5, 11] {
            let probe = |delta: f32, layer: &mut Dense| {
                layer.weight.value.data_mut()[flat] += delta;
                let l = layer.forward(&x, Mode::Eval).unwrap().sum();
                layer.weight.value.data_mut()[flat] -= delta;
                l
            };
            let num = (probe(eps, &mut layer) - probe(-eps, &mut layer)) / (2.0 * eps);
            let analytic = wgrads[0].data()[flat];
            assert!((num - analytic).abs() < 1e-2, "num={num} vs {analytic}");
        }

        // Input gradient check.
        let mut x2 = x.clone();
        for &flat in &[0usize, 7] {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let lp = layer.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig - eps;
            let lm = layer.forward(&x2, Mode::Eval).unwrap().sum();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[flat]).abs() < 1e-2);
        }
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = Rng::new(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        for _ in 0..2 {
            layer.forward(&x, Mode::Train).unwrap();
            layer.backward(&Tensor::ones(&[1, 2])).unwrap();
        }
        let g1 = layer.weight.grad.clone();
        layer.zero_grad();
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones(&[1, 2])).unwrap();
        let g2 = layer.weight.grad.clone();
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::new(3);
        let mut layer = Dense::new(5, 7, &mut rng);
        assert_eq!(layer.param_count(), 5 * 7 + 7);
    }
}
