//! Weight initialization schemes.

use bprom_tensor::{Rng, Tensor};

/// Kaiming/He normal initialization for ReLU networks: `N(0, sqrt(2/fan_in))`.
pub fn kaiming(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(dims, rng).scale(std)
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6/(fan_in+fan_out))`. Used for attention projections.
pub fn xavier(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = Rng::new(0);
        let w = kaiming(&[64, 128], 128, &mut rng);
        let var = w.norm_sq() / w.len() as f32;
        let expected = 2.0 / 128.0;
        assert!((var - expected).abs() < expected * 0.3, "var={var}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng::new(1);
        let w = xavier(&[32, 32], 32, 32, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(w.max() <= a && w.min() >= -a);
    }
}
