//! Minibatch training loop shared by every experiment.

use crate::loss::softmax_cross_entropy;
use crate::optim::{Adam, Sgd};
use crate::{accuracy, Layer, Mode, NnError, Result, Sequential};
use bprom_tensor::{Rng, Tensor};

/// Which optimizer [`Trainer::fit`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizerKind {
    /// SGD with momentum (the default; matches the paper's "standard
    /// procedures").
    #[default]
    Sgd,
    /// Adam with the configured learning rate.
    Adam,
}

/// Hyperparameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 22,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.85,
            optimizer: OptimizerKind::Sgd,
        }
    }
}

impl TrainConfig {
    /// A faster configuration for unit tests and smoke runs.
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 4,
            ..Self::default()
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
}

/// Gathers the rows of a batched tensor addressed by `idx` into a new
/// contiguous batch, along with the matching labels.
///
/// # Errors
///
/// Returns an error if any index is out of range or label counts mismatch.
pub fn gather_batch(x: &Tensor, labels: &[usize], idx: &[usize]) -> Result<(Tensor, Vec<usize>)> {
    let n = x.shape()[0];
    if labels.len() != n {
        return Err(NnError::InvalidLabels {
            reason: format!("{} labels for {} samples", labels.len(), n),
        });
    }
    let inner: usize = x.shape()[1..].iter().product();
    let mut data = Vec::with_capacity(idx.len() * inner);
    let mut batch_labels = Vec::with_capacity(idx.len());
    for &i in idx {
        if i >= n {
            return Err(NnError::Tensor(
                bprom_tensor::TensorError::IndexOutOfBounds {
                    index: vec![i],
                    shape: x.shape().to_vec(),
                },
            ));
        }
        data.extend_from_slice(&x.data()[i * inner..(i + 1) * inner]);
        batch_labels.push(labels[i]);
    }
    let mut dims = vec![idx.len()];
    dims.extend_from_slice(&x.shape()[1..]);
    Ok((Tensor::from_vec(data, &dims)?, batch_labels))
}

/// Supervised classifier trainer (SGD + momentum, cross-entropy).
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer {
    /// Training hyperparameters.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains `model` in place on `(x, labels)` and returns per-epoch losses.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/label inconsistencies or optimizer drift.
    pub fn fit(
        &self,
        model: &mut Sequential,
        x: &Tensor,
        labels: &[usize],
        rng: &mut Rng,
    ) -> Result<TrainReport> {
        let n = x.shape()[0];
        if n == 0 || labels.len() != n {
            return Err(NnError::InvalidLabels {
                reason: format!("{} labels for {} samples", labels.len(), n),
            });
        }
        let cfg = &self.config;
        let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
        let mut adam = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let (bx, by) = gather_batch(x, labels, chunk)?;
                let logits = model.forward(&bx, Mode::Train)?;
                let (loss, grad) = softmax_cross_entropy(&logits, &by)?;
                model.zero_grad();
                model.backward(&grad)?;
                match cfg.optimizer {
                    OptimizerKind::Sgd => sgd.step(model)?,
                    OptimizerKind::Adam => adam.step(model)?,
                }
                total += loss;
                batches += 1;
            }
            epoch_losses.push(total / batches.max(1) as f32);
            let lr = cfg.lr * cfg.lr_decay.powi(epoch as i32 + 1);
            sgd.set_lr(lr);
            adam.set_lr(lr);
        }
        Ok(TrainReport { epoch_losses })
    }

    /// Evaluates classification accuracy in eval mode, batched to bound
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/label inconsistencies.
    pub fn evaluate(&self, model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<f32> {
        let n = x.shape()[0];
        if labels.len() != n {
            return Err(NnError::InvalidLabels {
                reason: format!("{} labels for {} samples", labels.len(), n),
            });
        }
        let idx: Vec<usize> = (0..n).collect();
        let mut correct_weighted = 0.0f32;
        for chunk in idx.chunks(64) {
            let (bx, by) = gather_batch(x, labels, chunk)?;
            let logits = model.forward(&bx, Mode::Eval)?;
            correct_weighted += accuracy(&logits, &by)? * chunk.len() as f32;
        }
        Ok(correct_weighted / n as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mlp, ModelSpec};

    /// Two well-separated Gaussian blobs rendered as 1-channel "images".
    fn blob_data(n_per_class: usize, rng: &mut Rng) -> (Tensor, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            let center = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..n_per_class {
                for _ in 0..16 {
                    data.push(center + 0.3 * rng.normal());
                }
                labels.push(class);
            }
        }
        let n = labels.len();
        (Tensor::from_vec(data, &[n, 1, 4, 4]).unwrap(), labels)
    }

    #[test]
    fn trainer_fits_separable_blobs() {
        let mut rng = Rng::new(0);
        let (x, y) = blob_data(40, &mut rng);
        let spec = ModelSpec::new(1, 4, 2);
        let mut model = mlp(&spec, &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig::fast());
        let report = trainer.fit(&mut model, &x, &y, &mut rng).unwrap();
        assert!(report.epoch_losses.last().unwrap() < &0.2);
        let acc = trainer.evaluate(&mut model, &x, &y).unwrap();
        assert!(acc > 0.95, "acc={acc}");
    }

    #[test]
    fn losses_decrease() {
        let mut rng = Rng::new(1);
        let (x, y) = blob_data(30, &mut rng);
        let spec = ModelSpec::new(1, 4, 2);
        let mut model = mlp(&spec, &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig::default());
        let report = trainer.fit(&mut model, &x, &y, &mut rng).unwrap();
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
    }

    #[test]
    fn gather_batch_selects_rows() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 2]).unwrap();
        let labels = vec![0, 1, 2, 3];
        let (bx, by) = gather_batch(&x, &labels, &[2, 0]).unwrap();
        assert_eq!(bx.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(by, vec![2, 0]);
        assert!(gather_batch(&x, &labels, &[4]).is_err());
        assert!(gather_batch(&x, &[0], &[0]).is_err());
    }

    #[test]
    fn adam_optimizer_also_fits() {
        let mut rng = Rng::new(3);
        let (x, y) = blob_data(30, &mut rng);
        let spec = ModelSpec::new(1, 4, 2);
        let mut model = mlp(&spec, &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig {
            optimizer: OptimizerKind::Adam,
            lr: 0.01,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut model, &x, &y, &mut rng).unwrap();
        let acc = trainer.evaluate(&mut model, &x, &y).unwrap();
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn empty_training_set_rejected() {
        let mut rng = Rng::new(2);
        let spec = ModelSpec::new(1, 4, 2);
        let mut model = mlp(&spec, &mut rng).unwrap();
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let trainer = Trainer::default();
        assert!(trainer.fit(&mut model, &x, &[], &mut rng).is_err());
    }
}
