//! From-scratch neural-network library for the BPROM reproduction.
//!
//! Provides everything needed to train the paper's image classifiers on a
//! single CPU core: layers with manual forward/backward passes, losses,
//! optimizers, a [`Sequential`] container, a training loop, and a model zoo
//! ([`models`]) with miniature counterparts of the paper's architectures
//! (ResNet18 → [`models::resnet_mini`], MobileNetV2 →
//! [`models::mobilenet_mini`], MobileViT → [`models::vit_mini`], Swin →
//! [`models::swin_mini`]).
//!
//! # Design
//!
//! Layers implement explicit `forward`/`backward` methods instead of a tape
//! autograd. Each layer caches exactly what its backward pass needs, which
//! keeps memory predictable and lets the test suite check every layer
//! against finite differences.
//!
//! # Example: train a tiny MLP on XOR
//!
//! ```
//! use bprom_nn::{loss::softmax_cross_entropy, optim::Sgd, Dense, Layer, Mode, Relu, Sequential};
//! use bprom_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), bprom_nn::NnError> {
//! let mut rng = Rng::new(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(2, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 2, &mut rng)),
//! ]);
//! let x = Tensor::from_vec(vec![0., 0., 0., 1., 1., 0., 1., 1.], &[4, 2])?;
//! let y = [0usize, 1, 1, 0];
//! let mut opt = Sgd::new(0.5, 0.9, 0.0);
//! for _ in 0..200 {
//!     let logits = net.forward(&x, Mode::Train)?;
//!     let (_, grad) = softmax_cross_entropy(&logits, &y)?;
//!     net.zero_grad();
//!     net.backward(&grad)?;
//!     opt.step(&mut net)?;
//! }
//! let logits = net.forward(&x, Mode::Eval)?;
//! let acc = bprom_nn::accuracy(&logits, &y)?;
//! assert!(acc > 0.99);
//! # Ok(())
//! # }
//! ```

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod error;
pub mod init;
mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
mod optim_schedule;
mod sequential;
pub mod train;

pub use error::NnError;
pub use layer::{Layer, Mode};
pub use layers::{
    Attention, AvgPool2d, BatchNorm2d, Conv2d, Dense, DepthwiseConv2d, Dropout, Flatten,
    FoldTokens, Gelu, GlobalAvgPool, LayerNorm, LeakyRelu, MaxPool2d, PatchEmbed, Relu, Residual,
    Tanh, TokenMeanPool, UnfoldTokens,
};
pub use metrics::{accuracy, softmax};
pub use optim_schedule::LrSchedule;
pub use sequential::Sequential;
pub use train::{OptimizerKind, TrainConfig, Trainer};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NnError>;
