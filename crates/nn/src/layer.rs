use crate::Result;
use bprom_tensor::Tensor;

/// Whether a forward pass is part of training or inference.
///
/// Affects layers with distinct train/eval behaviour: [`crate::BatchNorm2d`]
/// (batch vs running statistics) and [`crate::Dropout`] (active vs identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training pass: stochastic layers are active, normalization uses
    /// batch statistics, and activations are cached for `backward`.
    Train,
    /// Frozen-model differentiation pass (visual prompting): activations
    /// are cached so `backward` can compute *input* gradients, but the
    /// model itself is treated as immutable — normalization uses running
    /// statistics without updating them and dropout is inactive.
    Frozen,
    /// Inference pass: deterministic behaviour, running statistics.
    #[default]
    Eval,
}

impl Mode {
    /// Whether layers should cache activations for a later `backward`.
    pub fn caches(self) -> bool {
        !matches!(self, Mode::Eval)
    }

    /// Whether the pass may mutate model state (batch-norm running stats)
    /// and activate stochastic layers.
    pub fn trains(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A differentiable network layer with explicit forward/backward passes.
///
/// Implementations cache whatever their backward pass needs during
/// `forward(Mode::Train)`. Calling [`Layer::backward`] without a prior
/// training-mode forward returns [`crate::NnError::BackwardBeforeForward`].
///
/// Layers are `Send + Sync`: they hold only plain data (tensors, scalar
/// hyperparameters, an owned `Rng`), which lets whole models cross the
/// `bprom-par` worker-pool boundary and lets [`Layer::forward_eval`]
/// serve concurrent inference through shared references.
pub trait Layer: Send + Sync {
    /// Computes the layer output for a batch.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Inference forward pass through a shared reference: bit-identical
    /// to `forward(input, Mode::Eval)` but guaranteed side-effect-free
    /// (no activation caching, no statistics updates), so one model can
    /// serve queries from many threads at once.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward_eval(&self, input: &Tensor) -> Result<Tensor>;

    /// Propagates the loss gradient from output to input, accumulating
    /// parameter gradients along the way.
    ///
    /// # Errors
    ///
    /// Returns an error if called before a training-mode forward pass or if
    /// `grad_output` has the wrong shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Visits every `(parameter, gradient)` pair in a stable order.
    ///
    /// Optimizers rely on the visit order being identical across calls to
    /// associate per-parameter state (momentum, Adam moments).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Visits every parameter value through a shared reference, in the same
    /// stable order as [`Layer::visit_params`]. Lets serialization read a
    /// model without `&mut` access.
    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor));

    /// Visits every non-trainable state buffer (e.g. batch-norm running
    /// statistics) in a stable order. Layers without buffers keep the
    /// empty default.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut [f32])) {}

    /// Shared-reference counterpart of [`Layer::visit_buffers`], in the
    /// same stable order.
    fn visit_buffers_shared(&self, _f: &mut dyn FnMut(&[f32])) {}

    /// Resets all accumulated gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.map_in_place(|_| 0.0));
    }

    /// Short human-readable layer name used in error messages.
    fn name(&self) -> &'static str;

    /// Total number of trainable scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p, _| count += p.len());
        count
    }
}

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by `backward` since the last `zero_grad`.
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zero gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Visitor plumbing for [`Layer::visit_params`].
    pub fn visit(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.value, &mut self.grad);
    }

    /// Visitor plumbing for [`Layer::visit_params_shared`].
    pub fn visit_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_grad_matches_shape() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.shape(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn mode_default_is_eval() {
        assert_eq!(Mode::default(), Mode::Eval);
    }
}
