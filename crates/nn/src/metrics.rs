//! Model-level helper metrics: softmax and classification accuracy.

use crate::{NnError, Result};
use bprom_tensor::Tensor;

/// Row-wise softmax of a `[n, k]` logit matrix (numerically stabilized).
///
/// # Errors
///
/// Returns an error for non-rank-2 input.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
            reason: format!("softmax expects [n, k], got {:?}", logits.shape()),
        }));
    }
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[n, k]);
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (j, e) in exps.iter().enumerate() {
            out.data_mut()[i * k + j] = e / sum;
        }
    }
    Ok(out)
}

/// Fraction of rows whose argmax matches the label.
///
/// # Errors
///
/// Returns [`NnError::InvalidLabels`] if counts differ and an error for
/// non-rank-2 logits.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(bprom_tensor::TensorError::InvalidShape {
            reason: format!("accuracy expects [n, k], got {:?}", logits.shape()),
        }));
    }
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != n {
        return Err(NnError::InvalidLabels {
            reason: format!("{} labels for {} rows", labels.len(), n),
        });
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data()[i * k..(i + 1) * k];
        let mut best = 0usize;
        for j in 1..k {
            if row[j] > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        for i in 0..2 {
            let sum: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 999.0], &[1, 2]).unwrap();
        let p = softmax(&logits).unwrap();
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!(p.data()[0] > p.data()[1]);
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_validates_label_count() {
        let logits = Tensor::zeros(&[2, 2]);
        assert!(accuracy(&logits, &[0]).is_err());
    }
}
