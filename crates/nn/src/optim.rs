//! Optimizers. Each `step` visits the model's parameters in their stable
//! visit order and applies the accumulated gradients.

use crate::{Layer, NnError, Result};
use bprom_tensor::Tensor;

/// Stochastic gradient descent with classical momentum and L2 weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate, momentum coefficient and
    /// L2 weight-decay coefficient.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update using the gradients accumulated in `model`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the model's parameter structure
    /// changed between steps.
    pub fn step(&mut self, model: &mut dyn Layer) -> Result<()> {
        let mut idx = 0;
        let mut err = None;
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p, g| {
            if err.is_some() {
                return;
            }
            if idx == velocity.len() {
                velocity.push(Tensor::zeros(p.shape()));
            }
            let v = &mut velocity[idx];
            if v.shape() != p.shape() {
                err = Some(NnError::InvalidConfig {
                    reason: format!("optimizer state shape drift at parameter {idx}"),
                });
                return;
            }
            for ((vi, &gi), pi) in v.data_mut().iter_mut().zip(g.data()).zip(p.data().to_vec()) {
                *vi = mu * *vi + gi + wd * pi;
            }
            for (pi, &vi) in p.data_mut().iter_mut().zip(v.data()) {
                *pi -= lr * vi;
            }
            idx += 1;
        });
        err.map_or(Ok(()), Err)
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with standard hyperparameters (β₁=0.9, β₂=0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam update using the gradients accumulated in `model`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the model's parameter structure
    /// changed between steps.
    pub fn step(&mut self, model: &mut dyn Layer) -> Result<()> {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let mut idx = 0;
        let mut err = None;
        let (ms, vs) = (&mut self.m, &mut self.v);
        model.visit_params(&mut |p, g| {
            if err.is_some() {
                return;
            }
            if idx == ms.len() {
                ms.push(Tensor::zeros(p.shape()));
                vs.push(Tensor::zeros(p.shape()));
            }
            if ms[idx].shape() != p.shape() {
                err = Some(NnError::InvalidConfig {
                    reason: format!("optimizer state shape drift at parameter {idx}"),
                });
                return;
            }
            let m = ms[idx].data_mut();
            let v = vs[idx].data_mut();
            for (((mi, vi), &gi), pi) in m
                .iter_mut()
                .zip(v.iter_mut())
                .zip(g.data())
                .zip(p.data_mut().iter_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *pi -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
        err.map_or(Ok(()), Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::{Dense, Mode, Relu, Sequential};
    use bprom_tensor::{Rng, Tensor};

    fn train_xor(mut opt_step: impl FnMut(&mut Sequential) -> Result<()>, seed: u64) -> f32 {
        let mut rng = Rng::new(seed);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 2, &mut rng)),
        ]);
        let x = Tensor::from_vec(vec![0., 0., 0., 1., 1., 0., 1., 1.], &[4, 2]).unwrap();
        let y = [0usize, 1, 1, 0];
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let logits = net.forward(&x, Mode::Train).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &y).unwrap();
            last = loss;
            net.zero_grad();
            net.backward(&grad).unwrap();
            opt_step(&mut net).unwrap();
        }
        last
    }

    #[test]
    fn sgd_learns_xor() {
        let mut opt = Sgd::new(0.5, 0.9, 0.0);
        let loss = train_xor(|net| opt.step(net), 0);
        assert!(loss < 0.05, "loss={loss}");
    }

    #[test]
    fn adam_learns_xor() {
        let mut opt = Adam::new(0.05);
        let loss = train_xor(|net| opt.step(net), 1);
        assert!(loss < 0.05, "loss={loss}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng::new(2);
        let mut net = Sequential::new(vec![Box::new(Dense::new(4, 4, &mut rng))]);
        let before: f32 = net.export_params()[0].norm_sq();
        // Zero gradients; only weight decay acts.
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        net.zero_grad();
        for _ in 0..10 {
            opt.step(&mut net).unwrap();
        }
        let after: f32 = net.export_params()[0].norm_sq();
        assert!(after < before);
    }

    #[test]
    fn lr_setter() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.2);
        assert_eq!(adam.lr(), 0.2);
    }
}
