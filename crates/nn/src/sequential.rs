use crate::layer::{Layer, Mode};
use crate::Result;
use bprom_tensor::Tensor;

/// A chain of layers applied in order. The universal model container of the
/// workspace: every architecture in [`crate::models`] is a `Sequential`.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

impl Sequential {
    /// Creates a model from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Runs a forward pass collecting every layer's output (for defenses
    /// that inspect intermediate representations, e.g. TED).
    ///
    /// # Errors
    ///
    /// Propagates layer failures.
    pub fn forward_trace(&mut self, input: &Tensor, mode: Mode) -> Result<Vec<Tensor>> {
        let mut x = input.clone();
        let mut trace = Vec::with_capacity(self.layers.len());
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
            trace.push(x.clone());
        }
        Ok(trace)
    }

    /// Runs a forward pass up to (excluding) the final layer, returning the
    /// penultimate representation — the "activations" that clustering
    /// defenses (AC, Spectral Signatures, SPECTRE, SCAn) operate on.
    ///
    /// # Errors
    ///
    /// Propagates layer failures; returns the input unchanged for models
    /// with fewer than 2 layers.
    pub fn penultimate(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        let n = self.layers.len().saturating_sub(1);
        for layer in &mut self.layers[..n] {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Copies all parameter values out of the model, in visit order.
    pub fn export_params(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_params_shared(&mut |p| out.push(p.clone()));
        out
    }

    /// Copies all non-trainable state buffers (batch-norm running
    /// statistics) out of the model, in visit order.
    pub fn export_buffers(&self) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        self.visit_buffers_shared(&mut |b| out.push(b.to_vec()));
        out
    }

    /// Loads buffer values previously produced by
    /// [`Sequential::export_buffers`] on a structurally identical model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::InvalidConfig`] if the buffer count or any
    /// length differs.
    pub fn import_buffers(&mut self, buffers: &[Vec<f32>]) -> Result<()> {
        let mut idx = 0;
        let mut err: Option<crate::NnError> = None;
        self.visit_buffers(&mut |b| {
            if err.is_some() {
                return;
            }
            match buffers.get(idx) {
                Some(src) if src.len() == b.len() => b.copy_from_slice(src),
                Some(src) => {
                    err = Some(crate::NnError::InvalidConfig {
                        reason: format!(
                            "buffer {idx} length mismatch: model {} vs import {}",
                            b.len(),
                            src.len()
                        ),
                    })
                }
                None => {
                    err = Some(crate::NnError::InvalidConfig {
                        reason: format!("too few buffers: needed more than {idx}"),
                    })
                }
            }
            idx += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }
        if idx != buffers.len() {
            return Err(crate::NnError::InvalidConfig {
                reason: format!(
                    "too many buffers: model has {idx}, import has {}",
                    buffers.len()
                ),
            });
        }
        Ok(())
    }

    /// Loads parameter values previously produced by
    /// [`Sequential::export_params`] on a structurally identical model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::InvalidConfig`] if the parameter count or
    /// any shape differs.
    pub fn import_params(&mut self, params: &[Tensor]) -> Result<()> {
        let mut idx = 0;
        let mut err: Option<crate::NnError> = None;
        self.visit_params(&mut |p, _| {
            if err.is_some() {
                return;
            }
            match params.get(idx) {
                Some(src) if src.shape() == p.shape() => *p = src.clone(),
                Some(src) => {
                    err = Some(crate::NnError::InvalidConfig {
                        reason: format!(
                            "parameter {idx} shape mismatch: model {:?} vs import {:?}",
                            p.shape(),
                            src.shape()
                        ),
                    })
                }
                None => {
                    err = Some(crate::NnError::InvalidConfig {
                        reason: format!("too few parameters: needed more than {idx}"),
                    })
                }
            }
            idx += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }
        if idx != params.len() {
            return Err(crate::NnError::InvalidConfig {
                reason: format!(
                    "too many parameters: model has {idx}, import has {}",
                    params.len()
                ),
            });
        }
        Ok(())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    fn forward_eval(&self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward_eval(&x)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_shared(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_params_shared(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_buffers(f);
        }
    }

    fn visit_buffers_shared(&self, f: &mut dyn FnMut(&[f32])) {
        for layer in &self.layers {
            layer.visit_buffers_shared(f);
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use bprom_tensor::Rng;

    fn tiny_net(rng: &mut Rng) -> Sequential {
        Sequential::new(vec![
            Box::new(Dense::new(3, 5, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(5, 2, rng)),
        ])
    }

    #[test]
    fn forward_chains_layers() {
        let mut rng = Rng::new(0);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[4, 2]);
    }

    #[test]
    fn export_import_round_trip() {
        let mut rng = Rng::new(1);
        let mut a = tiny_net(&mut rng);
        let mut b = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 3], &mut rng);
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        assert_ne!(ya, yb);
        let params = a.export_params();
        b.import_params(&params).unwrap();
        let yb2 = b.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya, yb2);
    }

    #[test]
    fn import_rejects_wrong_count() {
        let mut rng = Rng::new(2);
        let mut net = tiny_net(&mut rng);
        let mut params = net.export_params();
        params.pop();
        assert!(net.import_params(&params).is_err());
        let mut extra = net.export_params();
        extra.push(Tensor::zeros(&[1]));
        assert!(net.import_params(&extra).is_err());
    }

    #[test]
    fn whole_net_gradient_finite_difference() {
        let mut rng = Rng::new(3);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 3], &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        let gx = net.backward(&y.map(|v| 2.0 * v)).unwrap();
        let eps = 1e-2;
        let mut x2 = x.clone();
        for flat in 0..x.len() {
            let orig = x2.data()[flat];
            x2.data_mut()[flat] = orig + eps;
            let lp = net.forward(&x2, Mode::Eval).unwrap().norm_sq();
            x2.data_mut()[flat] = orig - eps;
            let lm = net.forward(&x2, Mode::Eval).unwrap().norm_sq();
            x2.data_mut()[flat] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[flat]).abs() < 3e-2);
        }
    }

    #[test]
    fn forward_eval_matches_eval_forward_exactly() {
        let mut rng = Rng::new(5);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        net.forward(&x, Mode::Train).unwrap();
        let y_mut = net.forward(&x, Mode::Eval).unwrap();
        let y_shared = net.forward_eval(&x).unwrap();
        assert_eq!(y_mut, y_shared);
    }

    #[test]
    fn buffer_export_import_round_trip_carries_batchnorm_stats() {
        use crate::BatchNorm2d;
        let mut rng = Rng::new(8);
        let mut a = Sequential::new(vec![Box::new(BatchNorm2d::new(2))]);
        // Train-mode forwards update the running statistics.
        let x = Tensor::randn(&[3, 2, 4, 4], &mut rng);
        a.forward(&x, Mode::Train).unwrap();
        a.forward(&x, Mode::Train).unwrap();
        let buffers = a.export_buffers();
        assert_eq!(buffers.len(), 2); // running mean + running var

        let mut b = Sequential::new(vec![Box::new(BatchNorm2d::new(2))]);
        b.import_params(&a.export_params()).unwrap();
        b.import_buffers(&buffers).unwrap();
        // Eval-mode forward uses the running statistics, so outputs only
        // match if the buffers actually made it across.
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya, yb);

        let mut wrong = vec![vec![0.0f32; 2]];
        assert!(b.import_buffers(&wrong).is_err());
        wrong.push(vec![0.0f32; 3]);
        assert!(b.import_buffers(&wrong).is_err());
    }

    #[test]
    fn models_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Sequential>();
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = Rng::new(4);
        let mut net = tiny_net(&mut rng);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }
}
