//! Model zoo: miniature counterparts of the paper's architectures, scaled
//! to train in seconds on one CPU core while preserving each family's
//! structural signature (residual CNN, depthwise-separable CNN, ViT-style
//! attention, Swin-style windowed attention).

use crate::layers::{
    Attention, BatchNorm2d, Conv2d, Dense, DepthwiseConv2d, Flatten, FoldTokens, Gelu,
    GlobalAvgPool, LayerNorm, PatchEmbed, Relu, Residual, TokenMeanPool, UnfoldTokens,
};
use crate::{NnError, Result, Sequential};
use bprom_tensor::Rng;

/// Architecture families available in the zoo.
///
/// The paper's evaluation spans ResNet18, MobileNetV2, MobileViT and Swin
/// Transformer; each maps to the mini model of the same family here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Residual CNN (stands in for ResNet18).
    ResNetMini,
    /// Depthwise-separable CNN (stands in for MobileNetV2).
    MobileNetMini,
    /// Patch-embedding transformer with full attention (MobileViT).
    VitMini,
    /// Patch-embedding transformer with windowed attention (Swin).
    SwinMini,
    /// Plain multilayer perceptron (ablation baseline).
    Mlp,
}

impl Architecture {
    /// All architectures, for sweeps.
    pub const ALL: [Architecture; 5] = [
        Architecture::ResNetMini,
        Architecture::MobileNetMini,
        Architecture::VitMini,
        Architecture::SwinMini,
        Architecture::Mlp,
    ];
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Architecture::ResNetMini => "ResNetMini",
            Architecture::MobileNetMini => "MobileNetMini",
            Architecture::VitMini => "VitMini",
            Architecture::SwinMini => "SwinMini",
            Architecture::Mlp => "Mlp",
        };
        f.write_str(s)
    }
}

/// Input/output specification for a classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    /// Input channels (3 for the synthetic image datasets).
    pub in_channels: usize,
    /// Square input side in pixels.
    pub image_size: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl ModelSpec {
    /// Creates a spec.
    pub fn new(in_channels: usize, image_size: usize, num_classes: usize) -> Self {
        ModelSpec {
            in_channels,
            image_size,
            num_classes,
        }
    }
}

/// Builds a model of the requested architecture.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for specs the architecture cannot
/// accommodate (e.g. image sizes not divisible by the patch grid for the
/// transformer models).
pub fn build(arch: Architecture, spec: &ModelSpec, rng: &mut Rng) -> Result<Sequential> {
    match arch {
        Architecture::ResNetMini => resnet_mini(spec, rng),
        Architecture::MobileNetMini => mobilenet_mini(spec, rng),
        Architecture::VitMini => vit_mini(spec, rng),
        Architecture::SwinMini => swin_mini(spec, rng),
        Architecture::Mlp => mlp(spec, rng),
    }
}

/// Channel widths of the CNN bodies, widened when the label space is large
/// so the pooled feature vector can separate all classes.
fn head_widths(num_classes: usize) -> (usize, usize) {
    if num_classes <= 16 {
        (6, 10)
    } else if num_classes <= 50 {
        (8, 32)
    } else {
        (12, 48)
    }
}

fn check_spec(spec: &ModelSpec) -> Result<()> {
    if spec.in_channels == 0 || spec.image_size == 0 || spec.num_classes == 0 {
        return Err(NnError::InvalidConfig {
            reason: format!("degenerate model spec {spec:?}"),
        });
    }
    Ok(())
}

/// Residual CNN: stem conv → identity residual block → strided projection
/// residual block → global average pool → linear head.
pub fn resnet_mini(spec: &ModelSpec, rng: &mut Rng) -> Result<Sequential> {
    check_spec(spec)?;
    let (c1, c2) = head_widths(spec.num_classes);
    let block1 = Residual::new(Sequential::new(vec![
        Box::new(Conv2d::new(c1, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(c1, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
    ]));
    let block2 = Residual::with_projection(
        Sequential::new(vec![
            Box::new(Conv2d::new(c1, c2, 3, 2, 1, rng)),
            Box::new(BatchNorm2d::new(c2)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(c2, c2, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(c2)),
        ]),
        Sequential::new(vec![Box::new(Conv2d::new(c1, c2, 1, 2, 0, rng))]),
    );
    Ok(Sequential::new(vec![
        Box::new(Conv2d::new(spec.in_channels, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(Relu::new()),
        Box::new(block1),
        Box::new(Relu::new()),
        Box::new(block2),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(Dense::new(c2, spec.num_classes, rng)),
    ]))
}

/// Depthwise-separable CNN in the MobileNet style: stem conv followed by
/// two depthwise + pointwise blocks.
pub fn mobilenet_mini(spec: &ModelSpec, rng: &mut Rng) -> Result<Sequential> {
    check_spec(spec)?;
    let (c1, c3) = head_widths(spec.num_classes);
    let c2 = (c1 + c3) / 2;
    Ok(Sequential::new(vec![
        Box::new(Conv2d::new(spec.in_channels, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(Relu::new()),
        // Separable block 1 (stride 2).
        Box::new(DepthwiseConv2d::new(c1, 3, 2, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(c1, c2, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new(c2)),
        Box::new(Relu::new()),
        // Separable block 2.
        Box::new(DepthwiseConv2d::new(c2, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c2)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(c2, c3, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new(c3)),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(Dense::new(c3, spec.num_classes, rng)),
    ]))
}

const TOKEN_GRID: usize = 4;

fn transformer(spec: &ModelSpec, window: Option<usize>, rng: &mut Rng) -> Result<Sequential> {
    check_spec(spec)?;
    if spec.image_size % TOKEN_GRID != 0 {
        return Err(NnError::InvalidConfig {
            reason: format!(
                "transformer models need image_size divisible by {TOKEN_GRID}, got {}",
                spec.image_size
            ),
        });
    }
    let patch = spec.image_size / TOKEN_GRID;
    let tokens = TOKEN_GRID * TOKEN_GRID;
    let d = if spec.num_classes <= 16 { 16 } else { 32 };
    let hidden = 2 * d;
    let attn: Box<dyn crate::Layer> = match window {
        Some(w) => Box::new(Attention::windowed(d, w, rng)),
        None => Box::new(Attention::new(d, rng)),
    };
    let attn_block = Residual::new(Sequential::new(vec![Box::new(LayerNorm::new(d)), attn]));
    let mlp_block = Residual::new(Sequential::new(vec![
        Box::new(LayerNorm::new(d)),
        Box::new(FoldTokens::new()),
        Box::new(Dense::new(d, hidden, rng)),
        Box::new(Gelu::new()),
        Box::new(Dense::new(hidden, d, rng)),
        Box::new(UnfoldTokens::new(tokens)),
    ]));
    Ok(Sequential::new(vec![
        Box::new(PatchEmbed::new(spec.in_channels, d, patch, rng)),
        Box::new(attn_block),
        Box::new(mlp_block),
        Box::new(LayerNorm::new(d)),
        Box::new(TokenMeanPool::new()),
        Box::new(Dense::new(d, spec.num_classes, rng)),
    ]))
}

/// ViT-style transformer with full self-attention over a 4×4 token grid.
pub fn vit_mini(spec: &ModelSpec, rng: &mut Rng) -> Result<Sequential> {
    transformer(spec, None, rng)
}

/// Swin-style transformer with 2×2 windowed self-attention.
pub fn swin_mini(spec: &ModelSpec, rng: &mut Rng) -> Result<Sequential> {
    transformer(spec, Some(2), rng)
}

/// Two-layer MLP baseline.
pub fn mlp(spec: &ModelSpec, rng: &mut Rng) -> Result<Sequential> {
    check_spec(spec)?;
    let input = spec.in_channels * spec.image_size * spec.image_size;
    let hidden = 64.max(2 * spec.num_classes);
    Ok(Sequential::new(vec![
        Box::new(Flatten::new()),
        Box::new(Dense::new(input, hidden, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(hidden, spec.num_classes, rng)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Mode};
    use bprom_tensor::Tensor;

    fn smoke(arch: Architecture) {
        let mut rng = Rng::new(0);
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = build(arch, &spec, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let y = model.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[2, 10], "{arch}");
        let gx = model.backward(&Tensor::ones(&[2, 10])).unwrap();
        assert_eq!(gx.shape(), x.shape(), "{arch}");
        assert!(model.param_count() > 0);
    }

    #[test]
    fn resnet_mini_smoke() {
        smoke(Architecture::ResNetMini);
    }

    #[test]
    fn mobilenet_mini_smoke() {
        smoke(Architecture::MobileNetMini);
    }

    #[test]
    fn vit_mini_smoke() {
        smoke(Architecture::VitMini);
    }

    #[test]
    fn swin_mini_smoke() {
        smoke(Architecture::SwinMini);
    }

    #[test]
    fn mlp_smoke() {
        smoke(Architecture::Mlp);
    }

    #[test]
    fn larger_image_sizes_work() {
        let mut rng = Rng::new(1);
        let spec = ModelSpec::new(3, 24, 50);
        for arch in Architecture::ALL {
            let mut model = build(arch, &spec, &mut rng).unwrap();
            let x = Tensor::randn(&[1, 3, 24, 24], &mut rng);
            let y = model.forward(&x, Mode::Eval).unwrap();
            assert_eq!(y.shape(), &[1, 50], "{arch}");
        }
    }

    #[test]
    fn forward_eval_is_bit_identical_across_architectures() {
        let mut rng = Rng::new(7);
        let spec = ModelSpec::new(3, 16, 10);
        for arch in Architecture::ALL {
            let mut model = build(arch, &spec, &mut rng).unwrap();
            let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
            // Train once so batch-norm running statistics are non-trivial.
            model.forward(&x, Mode::Train).unwrap();
            let y_mut = model.forward(&x, Mode::Eval).unwrap();
            let y_shared = model.forward_eval(&x).unwrap();
            assert_eq!(y_mut, y_shared, "{arch}");
        }
    }

    #[test]
    fn transformer_rejects_bad_image_size() {
        let mut rng = Rng::new(2);
        let spec = ModelSpec::new(3, 15, 10);
        assert!(vit_mini(&spec, &mut rng).is_err());
    }

    #[test]
    fn degenerate_spec_rejected() {
        let mut rng = Rng::new(3);
        assert!(mlp(&ModelSpec::new(0, 16, 10), &mut rng).is_err());
        assert!(resnet_mini(&ModelSpec::new(3, 16, 0), &mut rng).is_err());
    }
}
