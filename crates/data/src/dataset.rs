use crate::{DataError, Result};
use bprom_tensor::{Rng, Tensor};

/// A labelled image dataset: NCHW image tensor plus integer class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Images, `[n, c, h, w]`, values in `[0, 1]`.
    pub images: Tensor,
    /// Class label of each image.
    pub labels: Vec<usize>,
    /// Number of classes in the label space (labels are `< num_classes`).
    pub num_classes: usize,
    /// Human-readable dataset name (for reports).
    pub name: String,
}

impl Dataset {
    /// Creates a dataset, validating image/label consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] if the image count and label
    /// count differ, any label is out of range, or the tensor is not rank 4.
    pub fn new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
        name: impl Into<String>,
    ) -> Result<Self> {
        if images.rank() != 4 {
            return Err(DataError::Inconsistent {
                reason: format!("images must be [n, c, h, w], got {:?}", images.shape()),
            });
        }
        if images.shape()[0] != labels.len() {
            return Err(DataError::Inconsistent {
                reason: format!("{} images but {} labels", images.shape()[0], labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::Inconsistent {
                reason: format!("label {bad} out of range for {num_classes} classes"),
            });
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
            name: name.into(),
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image side length (assumes square images).
    pub fn image_size(&self) -> usize {
        self.images.shape()[3]
    }

    /// Number of image channels.
    pub fn channels(&self) -> usize {
        self.images.shape()[1]
    }

    /// Builds a new dataset from the samples addressed by `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRequest`] on an empty index list and an
    /// error for out-of-range indices.
    pub fn select(&self, idx: &[usize]) -> Result<Dataset> {
        if idx.is_empty() {
            return Err(DataError::InvalidRequest {
                reason: "cannot select zero samples".to_string(),
            });
        }
        let inner: usize = self.images.shape()[1..].iter().product();
        let mut data = Vec::with_capacity(idx.len() * inner);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            if i >= self.len() {
                return Err(DataError::InvalidRequest {
                    reason: format!("index {i} out of range for {} samples", self.len()),
                });
            }
            data.extend_from_slice(&self.images.data()[i * inner..(i + 1) * inner]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![idx.len()];
        dims.extend_from_slice(&self.images.shape()[1..]);
        Ok(Dataset {
            images: Tensor::from_vec(data, &dims)?,
            labels,
            num_classes: self.num_classes,
            name: self.name.clone(),
        })
    }

    /// Splits into `(train, test)` with `train_fraction` of samples in the
    /// first part, after a shuffle.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRequest`] if the fraction leaves either
    /// side empty.
    pub fn split(&self, train_fraction: f32, rng: &mut Rng) -> Result<(Dataset, Dataset)> {
        let n = self.len();
        let n_train = (n as f32 * train_fraction).round() as usize;
        if n_train == 0 || n_train >= n {
            return Err(DataError::InvalidRequest {
                reason: format!("split fraction {train_fraction} leaves an empty side (n={n})"),
            });
        }
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let train = self.select(&idx[..n_train])?;
        let test = self.select(&idx[n_train..])?;
        Ok((train, test))
    }

    /// Random subsample of `fraction` of the dataset (at least one sample).
    ///
    /// This models the paper's reserved clean dataset `D_S` (1 %, 5 %, 10 %
    /// of the test set).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRequest`] for fractions outside `(0, 1]`.
    pub fn subsample(&self, fraction: f32, rng: &mut Rng) -> Result<Dataset> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(DataError::InvalidRequest {
                reason: format!("subsample fraction must be in (0, 1], got {fraction}"),
            });
        }
        let k = ((self.len() as f32 * fraction).round() as usize).clamp(1, self.len());
        let idx = rng.sample_indices(self.len(), k);
        self.select(&idx)
    }

    /// Keeps only the listed classes, remapping labels to `0..classes.len()`
    /// in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRequest`] if a class is out of range or
    /// no samples remain.
    pub fn filter_classes(&self, classes: &[usize]) -> Result<Dataset> {
        if let Some(&bad) = classes.iter().find(|&&c| c >= self.num_classes) {
            return Err(DataError::InvalidRequest {
                reason: format!("class {bad} out of range"),
            });
        }
        let idx: Vec<usize> = (0..self.len())
            .filter(|&i| classes.contains(&self.labels[i]))
            .collect();
        let mut out = self.select(&idx)?;
        out.labels = out
            .labels
            .iter()
            .map(|l| classes.iter().position(|c| c == l).expect("filtered"))
            .collect();
        out.num_classes = classes.len();
        Ok(out)
    }

    /// Concatenates two datasets over the same label space.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] if shapes or class counts differ.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset> {
        if self.images.shape()[1..] != other.images.shape()[1..]
            || self.num_classes != other.num_classes
        {
            return Err(DataError::Inconsistent {
                reason: format!(
                    "cannot concat {:?}/{} with {:?}/{}",
                    self.images.shape(),
                    self.num_classes,
                    other.images.shape(),
                    other.num_classes
                ),
            });
        }
        let mut data = self.images.data().to_vec();
        data.extend_from_slice(other.images.data());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let mut dims = vec![self.len() + other.len()];
        dims.extend_from_slice(&self.images.shape()[1..]);
        Ok(Dataset {
            images: Tensor::from_vec(data, &dims)?,
            labels,
            num_classes: self.num_classes,
            name: self.name.clone(),
        })
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, k: usize) -> Dataset {
        let images = Tensor::zeros(&[n, 1, 2, 2]);
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        Dataset::new(images, labels, k, "toy").unwrap()
    }

    #[test]
    fn new_validates() {
        assert!(Dataset::new(Tensor::zeros(&[2, 1, 2, 2]), vec![0], 1, "x").is_err());
        assert!(Dataset::new(Tensor::zeros(&[2, 1, 2, 2]), vec![0, 5], 2, "x").is_err());
        assert!(Dataset::new(Tensor::zeros(&[4]), vec![0], 1, "x").is_err());
    }

    #[test]
    fn select_picks_labels() {
        let d = toy(6, 3);
        let s = d.select(&[0, 4]).unwrap();
        assert_eq!(s.labels, vec![0, 1]);
        assert_eq!(s.len(), 2);
        assert!(d.select(&[]).is_err());
        assert!(d.select(&[9]).is_err());
    }

    #[test]
    fn split_partitions() {
        let mut rng = Rng::new(0);
        let d = toy(10, 2);
        let (tr, te) = d.split(0.7, &mut rng).unwrap();
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert!(d.split(0.0, &mut rng).is_err());
        assert!(d.split(1.0, &mut rng).is_err());
    }

    #[test]
    fn subsample_fraction() {
        let mut rng = Rng::new(1);
        let d = toy(100, 4);
        let s = d.subsample(0.1, &mut rng).unwrap();
        assert_eq!(s.len(), 10);
        assert!(d.subsample(0.0, &mut rng).is_err());
        assert!(d.subsample(1.5, &mut rng).is_err());
        // Tiny fraction still yields at least one sample.
        assert_eq!(d.subsample(0.001, &mut rng).unwrap().len(), 1);
    }

    #[test]
    fn filter_classes_remaps() {
        let d = toy(12, 4);
        let f = d.filter_classes(&[2, 0]).unwrap();
        assert_eq!(f.num_classes, 2);
        assert_eq!(f.len(), 6);
        // Former class 2 → 0, former class 0 → 1.
        assert!(f.labels.iter().all(|&l| l < 2));
        assert!(d.filter_classes(&[7]).is_err());
    }

    #[test]
    fn concat_appends() {
        let a = toy(4, 2);
        let b = toy(6, 2);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 10);
        let other = toy(4, 3);
        assert!(a.concat(&other).is_err());
    }

    #[test]
    fn class_counts_sum_to_len() {
        let d = toy(10, 3);
        let counts = d.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }
}
