use bprom_tensor::TensorError;
use std::fmt;

/// Error type for dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A requested split/subsample is impossible (e.g. fraction outside
    /// `(0, 1]`, or zero samples).
    InvalidRequest {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// Images and labels disagree in count, or a label is out of range.
    Inconsistent {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            DataError::Inconsistent { reason } => write!(f, "inconsistent dataset: {reason}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::InvalidRequest {
            reason: "fraction 0".into(),
        };
        assert!(e.to_string().contains("fraction 0"));
        let t: DataError = TensorError::InvalidParameter { reason: "x".into() }.into();
        assert!(std::error::Error::source(&t).is_some());
    }
}
