//! Training-time data augmentation (random shift + horizontal flip), the
//! standard recipe the paper's training procedures use on CIFAR-scale
//! images.

use crate::{DataError, Result};
use bprom_tensor::{Rng, Tensor};

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Augment {
    /// Maximum shift in pixels along each axis (edge-replicated).
    pub max_shift: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
}

impl Default for Augment {
    fn default() -> Self {
        Augment {
            max_shift: 2,
            flip_prob: 0.5,
        }
    }
}

impl Augment {
    /// Augments one `[c, h, w]` image.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] for non-rank-3 input.
    pub fn apply(&self, image: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        if image.rank() != 3 {
            return Err(DataError::Inconsistent {
                reason: format!("augment expects [c, h, w], got {:?}", image.shape()),
            });
        }
        let (c, h, w) = (image.shape()[0], image.shape()[1], image.shape()[2]);
        let dy = rng.below(2 * self.max_shift + 1) as isize - self.max_shift as isize;
        let dx = rng.below(2 * self.max_shift + 1) as isize - self.max_shift as isize;
        let flip = rng.bernoulli(self.flip_prob);
        let mut out = Tensor::zeros(image.shape());
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let sy = (y as isize - dy).clamp(0, h as isize - 1) as usize;
                    let sx_raw = (x as isize - dx).clamp(0, w as isize - 1) as usize;
                    let sx = if flip { w - 1 - sx_raw } else { sx_raw };
                    out.data_mut()[(ci * h + y) * w + x] = image.data()[(ci * h + sy) * w + sx];
                }
            }
        }
        Ok(out)
    }

    /// Augments a `[n, c, h, w]` batch, one independent draw per sample.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] for non-rank-4 input.
    pub fn apply_batch(&self, images: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        if images.rank() != 4 {
            return Err(DataError::Inconsistent {
                reason: format!("augment expects [n, c, h, w], got {:?}", images.shape()),
            });
        }
        let n = images.shape()[0];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.apply(&images.sample(i)?, rng)?);
        }
        Ok(Tensor::stack(&out)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_config_is_near_identity() {
        let mut rng = Rng::new(0);
        let aug = Augment {
            max_shift: 0,
            flip_prob: 0.0,
        };
        let img = Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut rng);
        let out = aug.apply(&img, &mut rng).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn flip_reverses_columns() {
        let mut rng = Rng::new(1);
        let aug = Augment {
            max_shift: 0,
            flip_prob: 1.0,
        };
        let img = Tensor::from_vec((0..4).map(|v| v as f32).collect(), &[1, 2, 2]).unwrap();
        let out = aug.apply(&img, &mut rng).unwrap();
        assert_eq!(out.data(), &[1.0, 0.0, 3.0, 2.0]);
    }

    #[test]
    fn augmented_values_come_from_the_image() {
        let mut rng = Rng::new(2);
        let aug = Augment::default();
        let img = Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut rng);
        let out = aug.apply(&img, &mut rng).unwrap();
        for v in out.data() {
            assert!(img.data().contains(v));
        }
    }

    #[test]
    fn batch_applies_independent_draws() {
        let mut rng = Rng::new(3);
        let aug = Augment::default();
        let img = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let copies: Vec<Tensor> = (0..8).map(|_| img.sample(0).unwrap()).collect();
        let batch = Tensor::stack(&copies).unwrap();
        let out = aug.apply_batch(&batch, &mut rng).unwrap();
        // With 8 copies and random draws, at least two must differ.
        let mut any_diff = false;
        for i in 1..8 {
            if out.sample(i).unwrap() != out.sample(0).unwrap() {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn rank_validation() {
        let mut rng = Rng::new(4);
        let aug = Augment::default();
        assert!(aug.apply(&Tensor::zeros(&[8, 8]), &mut rng).is_err());
        assert!(aug
            .apply_batch(&Tensor::zeros(&[3, 8, 8]), &mut rng)
            .is_err());
    }
}
