//! Rasterization of [`ClassStyle`]s into `[3, size, size]` image tensors.

use super::style::{ClassStyle, Pattern, Shape};
use bprom_tensor::{Rng, Tensor};

/// Renders one sample of a class style with per-sample jitter
/// (sub-pixel shape translation, brightness scaling, Gaussian pixel noise).
pub fn render(style: &ClassStyle, size: usize, rng: &mut Rng) -> Tensor {
    let jx = rng.uniform_in(-0.12, 0.12);
    let jy = rng.uniform_in(-0.12, 0.12);
    let brightness = rng.uniform_in(0.8, 1.2);
    let scale = rng.uniform_in(0.8, 1.2);
    let cx = (style.cx + jx) * size as f32;
    let cy = (style.cy + jy) * size as f32;
    let r = style.radius * scale * size as f32;
    let mut img = Tensor::zeros(&[3, size, size]);
    for y in 0..size {
        for x in 0..size {
            let bg = background_at(style, x, y, size);
            let color = if inside_shape(style.shape, x as f32, y as f32, cx, cy, r) {
                style.fg
            } else {
                bg
            };
            for ch in 0..3 {
                let noisy = color[ch] * brightness + style.noise * rng.normal();
                img.data_mut()[(ch * size + y) * size + x] = noisy.clamp(0.0, 1.0);
            }
        }
    }
    img
}

fn background_at(style: &ClassStyle, x: usize, y: usize, size: usize) -> [f32; 3] {
    let u = x as f32 / size as f32;
    let v = y as f32 / size as f32;
    match style.pattern {
        Pattern::Solid => style.bg,
        Pattern::Stripes { angle, freq } => {
            let t = u * angle.cos() + v * angle.sin();
            let s = 0.5 + 0.5 * (t * freq * std::f32::consts::TAU).sin();
            mix(style.bg, style.bg2, s)
        }
        Pattern::Checker { cells } => {
            let cell = ((u * cells as f32) as usize + (v * cells as f32) as usize) % 2;
            if cell == 0 {
                style.bg
            } else {
                style.bg2
            }
        }
        Pattern::Gradient { angle } => {
            let t = (u * angle.cos() + v * angle.sin()).clamp(0.0, 1.0);
            mix(style.bg, style.bg2, t)
        }
    }
}

fn mix(a: [f32; 3], b: [f32; 3], t: f32) -> [f32; 3] {
    [
        a[0] + (b[0] - a[0]) * t,
        a[1] + (b[1] - a[1]) * t,
        a[2] + (b[2] - a[2]) * t,
    ]
}

fn inside_shape(shape: Shape, x: f32, y: f32, cx: f32, cy: f32, r: f32) -> bool {
    let dx = x - cx;
    let dy = y - cy;
    match shape {
        Shape::Disk => dx * dx + dy * dy <= r * r,
        Shape::Square => dx.abs() <= r && dy.abs() <= r,
        Shape::Cross => {
            (dx.abs() <= r * 0.4 && dy.abs() <= r) || (dy.abs() <= r * 0.4 && dx.abs() <= r)
        }
        Shape::Diamond => dx.abs() + dy.abs() <= r * 1.2,
        Shape::Ring => {
            let d2 = dx * dx + dy * dy;
            d2 <= r * r && d2 >= (r * 0.55) * (r * 0.55)
        }
        Shape::VBar => dx.abs() <= r * 0.35 && dy.abs() <= r * 1.2,
        Shape::HBar => dy.abs() <= r * 0.35 && dx.abs() <= r * 1.2,
        Shape::DoubleBar => {
            (dx - r * 0.6).abs() <= r * 0.25 && dy.abs() <= r * 1.1
                || (dx + r * 0.6).abs() <= r * 0.25 && dy.abs() <= r * 1.1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::style::{derive, StyleProfile};

    #[test]
    fn renders_in_unit_range() {
        let mut rng = Rng::new(0);
        let style = derive(1, StyleProfile::Mixed, 0);
        let img = render(&style, 16, &mut rng);
        assert_eq!(img.shape(), &[3, 16, 16]);
        assert!(img.min() >= 0.0 && img.max() <= 1.0);
    }

    #[test]
    fn shape_pixels_take_foreground_color() {
        let mut rng = Rng::new(1);
        let mut style = derive(2, StyleProfile::ShapeDominant, 1);
        // Force a deterministic, noise-free disk in the center.
        style.noise = 0.0;
        style.cx = 0.5;
        style.cy = 0.5;
        style.radius = 0.25;
        style.shape = Shape::Disk;
        style.fg = [1.0, 0.0, 0.0];
        style.bg = [0.0, 0.0, 1.0];
        style.pattern = Pattern::Solid;
        let img = render(&style, 16, &mut rng);
        // Center pixel is foreground-ish red; corner is background-ish blue.
        let center_r = img.at(&[0, 8, 8]).unwrap();
        let corner_b = img.at(&[2, 0, 0]).unwrap();
        assert!(center_r > 0.8, "center red {center_r}");
        assert!(corner_b > 0.8, "corner blue {corner_b}");
    }

    #[test]
    fn samples_of_one_class_differ_by_jitter_only() {
        let mut rng = Rng::new(2);
        let style = derive(3, StyleProfile::Mixed, 2);
        let a = render(&style, 16, &mut rng);
        let b = render(&style, 16, &mut rng);
        assert_ne!(a, b);
        // But they stay close: mean absolute difference bounded.
        let mad: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / a.len() as f32;
        assert!(mad < 0.35, "mad={mad}");
    }

    #[test]
    fn all_shapes_render_nonempty() {
        for shape in [
            Shape::Disk,
            Shape::Square,
            Shape::Cross,
            Shape::Diamond,
            Shape::Ring,
            Shape::VBar,
            Shape::HBar,
            Shape::DoubleBar,
        ] {
            let mut hits = 0;
            for y in 0..16 {
                for x in 0..16 {
                    if inside_shape(shape, x as f32, y as f32, 8.0, 8.0, 4.0) {
                        hits += 1;
                    }
                }
            }
            assert!(hits > 0, "{shape:?} rendered no pixels");
            assert!(hits < 256, "{shape:?} covered the whole image");
        }
    }
}
