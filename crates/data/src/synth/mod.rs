//! Procedural dataset generators.
//!
//! Each [`SynthDataset`] stands in for one of the paper's datasets. A
//! dataset is a *family seed* plus a class count plus a structural profile;
//! each class derives a deterministic [`style::ClassStyle`] from the family
//! seed, and every sample renders that style with per-sample jitter.

pub mod render;
pub mod style;

use crate::{DataError, Dataset, Result};
use bprom_tensor::{Rng, Tensor};
use style::StyleProfile;

/// The synthetic stand-ins for the paper's datasets.
///
/// Family seeds and style profiles differ per dataset, so any two datasets
/// have visibly different distributions — the property the paper's
/// source-domain (`D_S`) / target-domain (`D_T`) split relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthDataset {
    /// CIFAR-10 stand-in: 10 classes, shape-dominant styles.
    Cifar10,
    /// GTSRB stand-in: 43 classes, traffic-sign-like (strong border rings).
    Gtsrb,
    /// STL-10 stand-in: 10 classes, texture-dominant styles, distinct
    /// palette (the paper's default external dataset `D_T`).
    Stl10,
    /// SVHN stand-in: 10 classes, digit-glyph-like bar compositions.
    Svhn,
    /// CIFAR-100 stand-in: 100 classes.
    Cifar100,
    /// Tiny-ImageNet stand-in: 20 classes (scaled from 200), larger images.
    TinyImageNet,
    /// ImageNet stand-in: 30 classes (scaled from 1000), larger images.
    ImageNet,
}

impl SynthDataset {
    /// All datasets, for sweeps.
    pub const ALL: [SynthDataset; 7] = [
        SynthDataset::Cifar10,
        SynthDataset::Gtsrb,
        SynthDataset::Stl10,
        SynthDataset::Svhn,
        SynthDataset::Cifar100,
        SynthDataset::TinyImageNet,
        SynthDataset::ImageNet,
    ];

    /// Number of classes.
    pub fn num_classes(self) -> usize {
        match self {
            SynthDataset::Cifar10 | SynthDataset::Stl10 | SynthDataset::Svhn => 10,
            SynthDataset::Gtsrb => 43,
            SynthDataset::Cifar100 => 100,
            SynthDataset::TinyImageNet => 20,
            SynthDataset::ImageNet => 30,
        }
    }

    /// Default image side used by the experiment harness.
    pub fn default_size(self) -> usize {
        match self {
            SynthDataset::TinyImageNet | SynthDataset::ImageNet => 24,
            _ => 16,
        }
    }

    /// Family seed decorrelating this dataset's class styles from every
    /// other dataset's.
    fn family_seed(self) -> u64 {
        match self {
            SynthDataset::Cifar10 => 0xC1FA_0010,
            SynthDataset::Gtsrb => 0x6D5B_0043,
            SynthDataset::Stl10 => 0x57E1_0010,
            SynthDataset::Svhn => 0x5711_0010,
            SynthDataset::Cifar100 => 0xC1FA_0100,
            SynthDataset::TinyImageNet => 0x7191_0200,
            SynthDataset::ImageNet => 0x1396_1000,
        }
    }

    fn profile(self) -> StyleProfile {
        match self {
            SynthDataset::Cifar10 | SynthDataset::Cifar100 => StyleProfile::ShapeDominant,
            SynthDataset::Gtsrb => StyleProfile::SignLike,
            SynthDataset::Stl10 => StyleProfile::TextureDominant,
            SynthDataset::Svhn => StyleProfile::GlyphLike,
            SynthDataset::TinyImageNet | SynthDataset::ImageNet => StyleProfile::Mixed,
        }
    }

    /// Display name used in dataset structs and reports.
    pub fn name(self) -> &'static str {
        match self {
            SynthDataset::Cifar10 => "synth-cifar10",
            SynthDataset::Gtsrb => "synth-gtsrb",
            SynthDataset::Stl10 => "synth-stl10",
            SynthDataset::Svhn => "synth-svhn",
            SynthDataset::Cifar100 => "synth-cifar100",
            SynthDataset::TinyImageNet => "synth-tiny-imagenet",
            SynthDataset::ImageNet => "synth-imagenet",
        }
    }

    /// Generates `n_per_class` samples of every class at side length `size`.
    ///
    /// Deterministic in `(self, n_per_class, size, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRequest`] if `n_per_class` or `size` is
    /// zero (or too small to render, size < 8).
    pub fn generate(self, n_per_class: usize, size: usize, seed: u64) -> Result<Dataset> {
        if n_per_class == 0 {
            return Err(DataError::InvalidRequest {
                reason: "n_per_class must be positive".to_string(),
            });
        }
        if size < 8 {
            return Err(DataError::InvalidRequest {
                reason: format!("image size must be >= 8, got {size}"),
            });
        }
        let k = self.num_classes();
        let n = n_per_class * k;
        let mut data = Vec::with_capacity(n * 3 * size * size);
        let mut labels = Vec::with_capacity(n);
        let mut rng = Rng::new(seed ^ self.family_seed());
        for class in 0..k {
            let style = style::derive(self.family_seed(), self.profile(), class);
            for _ in 0..n_per_class {
                let img = render::render(&style, size, &mut rng);
                data.extend_from_slice(img.data());
                labels.push(class);
            }
        }
        let images = Tensor::from_vec(data, &[n, 3, size, size])?;
        // Shuffle sample order so class blocks don't bias minibatches.
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        Dataset::new(images, labels, k, self.name())?.select(&idx)
    }
}

impl std::fmt::Display for SynthDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthDataset::Cifar10.generate(3, 16, 7).unwrap();
        let b = SynthDataset::Cifar10.generate(3, 16, 7).unwrap();
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthDataset::Cifar10.generate(3, 16, 7).unwrap();
        let b = SynthDataset::Cifar10.generate(3, 16, 8).unwrap();
        assert_ne!(a.images, b.images);
    }

    #[test]
    fn values_in_unit_range() {
        let d = SynthDataset::Stl10.generate(2, 16, 0).unwrap();
        assert!(d.images.min() >= 0.0);
        assert!(d.images.max() <= 1.0);
    }

    #[test]
    fn class_counts_balanced() {
        let d = SynthDataset::Gtsrb.generate(4, 16, 1).unwrap();
        assert_eq!(d.num_classes, 43);
        assert!(d.class_counts().iter().all(|&c| c == 4));
    }

    #[test]
    fn datasets_have_distinct_distributions() {
        // Same seed, same class, different family → different images.
        let a = SynthDataset::Cifar10.generate(2, 16, 3).unwrap();
        let b = SynthDataset::Stl10.generate(2, 16, 3).unwrap();
        assert_ne!(a.images, b.images);
    }

    #[test]
    fn invalid_requests_rejected() {
        assert!(SynthDataset::Cifar10.generate(0, 16, 0).is_err());
        assert!(SynthDataset::Cifar10.generate(1, 4, 0).is_err());
    }

    #[test]
    fn all_datasets_generate() {
        for ds in SynthDataset::ALL {
            let d = ds.generate(1, ds.default_size(), 0).unwrap();
            assert_eq!(d.len(), ds.num_classes());
        }
    }
}
