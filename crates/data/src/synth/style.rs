//! Per-class visual styles and their deterministic derivation.

use bprom_tensor::Rng;

/// RGB colour with components in `[0, 1]`.
pub type Color = [f32; 3];

/// Background pattern families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Solid background colour.
    Solid,
    /// Sinusoidal stripes with a given angle (radians) and spatial
    /// frequency (cycles across the image).
    Stripes {
        /// Stripe orientation in radians.
        angle: f32,
        /// Cycles across the image side.
        freq: f32,
    },
    /// Checkerboard with `cells × cells` squares.
    Checker {
        /// Number of cells along each side.
        cells: usize,
    },
    /// Linear gradient between the background and foreground colours,
    /// oriented by `angle`.
    Gradient {
        /// Gradient direction in radians.
        angle: f32,
    },
}

/// Foreground shape families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Filled disk.
    Disk,
    /// Filled axis-aligned square.
    Square,
    /// Plus-shaped cross.
    Cross,
    /// Filled diamond (rotated square).
    Diamond,
    /// Ring (annulus) — dominant in the sign-like profile.
    Ring,
    /// Vertical bar.
    VBar,
    /// Horizontal bar.
    HBar,
    /// Two parallel vertical bars — glyph-like.
    DoubleBar,
}

const ALL_SHAPES: [Shape; 8] = [
    Shape::Disk,
    Shape::Square,
    Shape::Cross,
    Shape::Diamond,
    Shape::Ring,
    Shape::VBar,
    Shape::HBar,
    Shape::DoubleBar,
];

/// Structural emphasis of a dataset family; biases which style components
/// carry the class identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StyleProfile {
    /// Class identity mostly in the foreground shape (CIFAR-like).
    ShapeDominant,
    /// Class identity mostly in the background texture (STL-like).
    TextureDominant,
    /// Ring/border heavy, saturated palettes (traffic signs).
    SignLike,
    /// Bar-glyph compositions on noisy backgrounds (house numbers).
    GlyphLike,
    /// Everything varies (large heterogeneous datasets).
    Mixed,
}

/// Complete recipe for rendering one class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStyle {
    /// Background base colour.
    pub bg: Color,
    /// Second background colour; patterns alternate `bg`/`bg2`, making
    /// every image region (corners included) class-informative.
    pub bg2: Color,
    /// Foreground / shape colour.
    pub fg: Color,
    /// Background pattern.
    pub pattern: Pattern,
    /// Foreground shape.
    pub shape: Shape,
    /// Shape centre in unit coordinates.
    pub cx: f32,
    /// Shape centre in unit coordinates.
    pub cy: f32,
    /// Shape radius as a fraction of the image side.
    pub radius: f32,
    /// Standard deviation of per-sample pixel noise.
    pub noise: f32,
}

/// HSV → RGB for saturated palette construction.
fn hsv(h: f32, s: f32, v: f32) -> Color {
    let h6 = (h.fract() * 6.0).abs();
    let i = h6 as usize % 6;
    let f = h6 - h6.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - s * f);
    let t = v * (1.0 - s * (1.0 - f));
    match i {
        0 => [v, t, p],
        1 => [q, v, p],
        2 => [p, v, t],
        3 => [p, q, v],
        4 => [t, p, v],
        _ => [v, p, q],
    }
}

/// Class-indexed saturated colour: hues advance around the colour wheel by
/// the golden ratio, guaranteeing well-spread palettes even for 100-class
/// datasets.
fn saturated_color(class: usize, family_offset: f32, rng: &mut Rng) -> Color {
    const GOLDEN: f32 = 0.618_034;
    let hue = (class as f32 * GOLDEN + family_offset + rng.uniform_in(0.0, 0.15)).fract();
    hsv(hue, rng.uniform_in(0.75, 1.0), rng.uniform_in(0.75, 1.0))
}

fn muted_color(rng: &mut Rng) -> Color {
    [
        rng.uniform_in(0.2, 0.8),
        rng.uniform_in(0.2, 0.8),
        rng.uniform_in(0.2, 0.8),
    ]
}

/// Derives the deterministic style of `class` within a dataset family.
pub fn derive(family_seed: u64, profile: StyleProfile, class: usize) -> ClassStyle {
    // Mix family and class into one seed; class spacing avoids collisions.
    let mut rng = Rng::new(family_seed ^ (class as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Rotate the whole hue wheel per dataset family: class i of one dataset
    // must NOT share its palette with class i of another, otherwise the
    // source and target domains are accidentally pre-aligned and visual
    // prompting has nothing to map.
    // Offset magnitude is capped well below the golden-ratio class spacing
    // (0.382): class i stays *nearest* to class i across families, but the
    // prompt must still learn a genuine colour-space correction. This is
    // the miniature analogue of CIFAR-10 vs STL-10: related domains with a
    // systematic shift.
    let family_offset = 0.02 + (family_seed % 997) as f32 / 997.0 * 0.10;
    let (bg, fg) = match profile {
        StyleProfile::TextureDominant => (
            saturated_color(class, family_offset, &mut rng),
            muted_color(&mut rng),
        ),
        _ => (
            muted_color(&mut rng),
            saturated_color(class, family_offset, &mut rng),
        ),
    };
    // Second pattern colour offset around the wheel, also class-indexed.
    let bg2 = saturated_color(class + 13, family_offset, &mut rng);
    // Every class gets a structured, two-colour background so that *all*
    // image regions (corners included) carry class signal — the property of
    // natural images that makes backdoor triggers compete with class
    // features for representation (see DESIGN.md).
    let pattern = match rng.below(3) {
        0 => Pattern::Stripes {
            angle: rng.uniform_in(0.0, std::f32::consts::PI),
            freq: rng.uniform_in(2.0, 6.0),
        },
        1 => Pattern::Checker {
            cells: 2 + rng.below(4),
        },
        _ => Pattern::Gradient {
            angle: rng.uniform_in(0.0, std::f32::consts::PI),
        },
    };
    let shape = match profile {
        StyleProfile::SignLike => {
            // Signs: rings, disks and diamonds dominate.
            *[Shape::Ring, Shape::Disk, Shape::Diamond, Shape::Square][rng.below(4)..][..1]
                .first()
                .expect("non-empty")
        }
        StyleProfile::GlyphLike => *[Shape::VBar, Shape::HBar, Shape::DoubleBar, Shape::Cross]
            [rng.below(4)..][..1]
            .first()
            .expect("non-empty"),
        _ => ALL_SHAPES[rng.below(ALL_SHAPES.len())],
    };
    ClassStyle {
        bg,
        bg2,
        fg,
        pattern,
        shape,
        cx: rng.uniform_in(0.35, 0.65),
        cy: rng.uniform_in(0.35, 0.65),
        radius: rng.uniform_in(0.18, 0.3),
        noise: match profile {
            StyleProfile::GlyphLike => 0.12,
            _ => 0.09,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = derive(1, StyleProfile::Mixed, 3);
        let b = derive(1, StyleProfile::Mixed, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn classes_get_distinct_styles() {
        let styles: Vec<ClassStyle> = (0..20)
            .map(|c| derive(42, StyleProfile::Mixed, c))
            .collect();
        for i in 0..styles.len() {
            for j in (i + 1)..styles.len() {
                assert_ne!(styles[i], styles[j], "classes {i} and {j} collide");
            }
        }
    }

    #[test]
    fn families_decorrelate() {
        let a = derive(1, StyleProfile::Mixed, 0);
        let b = derive(2, StyleProfile::Mixed, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn colors_in_range() {
        for c in 0..50 {
            let s = derive(7, StyleProfile::SignLike, c);
            for v in s.bg.iter().chain(s.fg.iter()) {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }
}
