//! Synthetic image dataset substrate for the BPROM reproduction.
//!
//! The paper evaluates on CIFAR-10, GTSRB, STL-10, SVHN, CIFAR-100,
//! Tiny-ImageNet and ImageNet. None of those can be downloaded in this
//! environment, so this crate provides *procedural stand-ins*: each class
//! of each dataset is a distinct parametric image generator (background
//! pattern + foreground shape + colour palette), and each dataset family
//! uses a different generator seed and structural emphasis, giving the
//! distinct distributions the paper's source/target-domain split requires.
//!
//! What the substitution preserves (see `DESIGN.md` §2):
//!
//! * learnable class structure — a small CNN reaches high accuracy,
//! * distribution mismatch between datasets — visual prompting is
//!   meaningful,
//! * poisonability — triggers planted by `bprom-attacks` dominate the
//!   class signal exactly as on natural images.
//!
//! # Example
//!
//! ```
//! use bprom_data::{Dataset, SynthDataset};
//!
//! let data = SynthDataset::Cifar10.generate(5, 16, 42)?;
//! assert_eq!(data.len(), 50);
//! assert_eq!(data.num_classes, 10);
//! assert_eq!(data.images.shape(), &[50, 3, 16, 16]);
//! # Ok::<(), bprom_data::DataError>(())
//! ```

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod augment;
mod batch;
mod dataset;
mod error;
pub mod synth;

pub use augment::Augment;
pub use batch::Batches;
pub use dataset::Dataset;
pub use error::DataError;
pub use synth::SynthDataset;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DataError>;
