//! Minibatch iteration over a [`Dataset`].

use crate::{DataError, Dataset, Result};
use bprom_tensor::{Rng, Tensor};

/// Iterator over shuffled minibatches of a dataset.
///
/// Created by [`Dataset::batches`]. Each item is `(images, labels)` with
/// `images: [b, c, h, w]`; the final batch may be smaller.
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Dataset {
    /// Iterates over the dataset in shuffled minibatches of `batch_size`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRequest`] for a zero batch size.
    pub fn batches<'a>(&'a self, batch_size: usize, rng: &mut Rng) -> Result<Batches<'a>> {
        if batch_size == 0 {
            return Err(DataError::InvalidRequest {
                reason: "batch size must be positive".to_string(),
            });
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        Ok(Batches {
            dataset: self,
            order,
            batch_size,
            cursor: 0,
        })
    }
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        let subset = self
            .dataset
            .select(idx)
            .expect("indices generated from 0..len are valid");
        Some((subset.images, subset.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthDataset;

    #[test]
    fn batches_cover_dataset_exactly_once() {
        let mut rng = Rng::new(0);
        let d = SynthDataset::Cifar10.generate(3, 16, 1).unwrap();
        let mut seen = 0usize;
        let mut class_counts = vec![0usize; 10];
        for (images, labels) in d.batches(7, &mut rng).unwrap() {
            assert_eq!(images.shape()[0], labels.len());
            assert!(labels.len() <= 7);
            seen += labels.len();
            for &l in &labels {
                class_counts[l] += 1;
            }
        }
        assert_eq!(seen, d.len());
        assert_eq!(class_counts, d.class_counts());
    }

    #[test]
    fn zero_batch_size_rejected() {
        let mut rng = Rng::new(1);
        let d = SynthDataset::Cifar10.generate(1, 16, 2).unwrap();
        assert!(d.batches(0, &mut rng).is_err());
    }

    #[test]
    fn shuffle_depends_on_rng() {
        let d = SynthDataset::Cifar10.generate(4, 16, 3).unwrap();
        let first = |seed: u64| {
            let mut rng = Rng::new(seed);
            d.batches(5, &mut rng).unwrap().next().unwrap().1
        };
        assert_ne!(first(1), first(2));
    }
}
