//! Minimal offline stand-in for the `criterion` benchmarking harness.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the real `criterion` cannot be fetched. This crate implements the
//! API subset the workspace's benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`],
//! [`black_box`] — with a simple warmup-then-measure wall-clock loop and
//! a `[min mean max]` per-iteration report, so `cargo bench` runs and the
//! bench sources stay source-compatible with upstream criterion should it
//! become available again.
//!
//! Measurement knobs (environment variables):
//!
//! * `BPROM_BENCH_WARMUP_MS` — warmup duration per benchmark (default 50).
//! * `BPROM_BENCH_MEASURE_MS` — measurement duration per benchmark
//!   (default 300).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-runs a routine and reports per-iteration wall-clock statistics.
pub struct Bencher {
    samples: Vec<f64>,
    measure: Duration,
    warmup: Duration,
}

impl Bencher {
    /// Measures a routine: warm up, then time batches of calls for the
    /// configured measurement window, recording per-iteration nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup, also estimating the per-call cost.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls.max(1) as f64;
        // Aim for ~50 samples over the measurement window, at least one
        // call per sample.
        let batch = ((self.measure.as_secs_f64() / 50.0 / per_call.max(1e-9)) as u64).max(1);
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

fn env_ms(name: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("BPROM_BENCH_WARMUP_MS", 50),
            measure: env_ms("BPROM_BENCH_MEASURE_MS", 300),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

impl Criterion {
    /// Runs one named benchmark and prints `name  time: [min mean max]`
    /// in criterion's familiar shape.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            measure: self.measure,
            warmup: self.warmup,
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{id:<40} time:   [no samples]");
            return self;
        }
        let n = bencher.samples.len() as f64;
        let mean = bencher.samples.iter().sum::<f64>() / n;
        let min = bencher
            .samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = bencher
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{id:<40} time:   [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
        self
    }

    /// Upstream-compat no-op (criterion prints a summary at exit).
    pub fn final_summary(&mut self) {}
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12.00 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_000_000.0), "2.00 ms");
        assert_eq!(format_ns(3.1e9), "3.10 s");
    }
}
