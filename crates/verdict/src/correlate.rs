//! The correlate stage: merging repeated audits of the same model
//! fingerprint into one incident per model.
//!
//! A fleet auditor re-inspects the same deployed model over time (new
//! query budgets, refreshed shadows, different oracle conditions). One
//! audit tripping `B002` could be forest noise; the same rule firing on
//! every audit of one fingerprint is persistent evidence. Correlation
//! groups audits by fingerprint, counts per-rule occurrences, and
//! escalates backdoor-evidence rules that fire repeatedly.

use crate::rules::{Finding, Signals};
use bprom_obs::{FromJson, JsonError, JsonResult, ToJson, Value};

/// One audit of one model: the fingerprint the caller supplied, the
/// collected signals, and the findings the rules stage produced.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Stable model fingerprint (e.g. 16 hex digits over the weights).
    pub model: String,
    /// Wire form of the oracle regime the audit ran under (`"full"`,
    /// `"quantized:<d>"`, `"top_k:<k>"`, `"label_only"`). A plain string
    /// so this crate stays independent of `bprom-regimes`; producers
    /// fill it from `OracleRegime::as_wire()`.
    pub regime: String,
    /// Wire form of the workload scenario the audit ran under
    /// (`"downstream"` for a model trained end-to-end on possibly
    /// poisoned data, `"backbone"` for a frozen pretrained backbone
    /// adapted with a visual prompt on clean downstream data). A plain
    /// string so this crate stays independent of `bprom-core`; producers
    /// fill it from `Scenario::as_wire()`.
    pub scenario: String,
    /// The collect stage's distilled observations.
    pub signals: Signals,
    /// Findings from the rules stage, in rule-ID order.
    pub findings: Vec<Finding>,
}

/// One rule's merged evidence across every audit of one model.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedFinding {
    /// The most severe instance of the rule across the audits (after
    /// escalation, its severity reflects persistence too).
    pub finding: Finding,
    /// How many of the model's audits raised this rule.
    pub occurrences: u64,
    /// Whether persistence escalated the severity: backdoor-evidence
    /// rules that fired on two or more audits are bumped one level.
    pub escalated: bool,
}

/// Everything the pipeline concluded about one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelIncident {
    /// The model fingerprint the audits were grouped by.
    pub model: String,
    /// How many audits of this model the run collected.
    pub audits: u64,
    /// Distinct oracle regimes the audits ran under, in first-seen
    /// order. A finding that persists across regimes (e.g. full scores
    /// *and* label-only) is stronger evidence than the same count under
    /// one regime.
    pub regimes: Vec<String>,
    /// Distinct workload scenarios the audits ran under, in first-seen
    /// order (`"downstream"`, `"backbone"`). A finding that persists
    /// across scenarios narrows where the poison can live.
    pub scenarios: Vec<String>,
    /// Merged findings, in rule-ID order.
    pub findings: Vec<CorrelatedFinding>,
    /// The response stage's decision (filled in by `respond`; defaults
    /// to `Action::None` straight out of correlation).
    pub action: crate::respond::Action,
}

impl ModelIncident {
    /// Whether any merged finding is backdoor evidence (the class that
    /// can flag or quarantine in strict mode).
    pub fn has_backdoor_evidence(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.finding.rule.is_backdoor_evidence())
    }

    /// The most severe merged severity, if any finding exists.
    pub fn max_severity(&self) -> Option<crate::rules::Severity> {
        self.findings.iter().map(|f| f.finding.severity).max()
    }
}

/// The correlate stage: groups `records` by model fingerprint (incidents
/// come back in first-seen order — deterministic for deterministic
/// input) and merges each rule's findings across a model's audits.
///
/// Merge semantics per (model, rule):
/// - `occurrences` counts the audits that raised the rule;
/// - the representative [`Finding`] is the most severe instance (ties
///   broken toward the earliest audit, keeping output stable);
/// - backdoor-evidence rules raised by ≥ 2 audits escalate one severity
///   level — persistence across independent audits is itself evidence.
pub fn correlate(records: &[AuditRecord]) -> Vec<ModelIncident> {
    let mut incidents: Vec<ModelIncident> = Vec::new();
    for record in records {
        let incident = match incidents.iter_mut().find(|i| i.model == record.model) {
            Some(existing) => existing,
            None => {
                incidents.push(ModelIncident {
                    model: record.model.clone(),
                    audits: 0,
                    regimes: Vec::new(),
                    scenarios: Vec::new(),
                    findings: Vec::new(),
                    action: crate::respond::Action::None,
                });
                incidents.last_mut().expect("just pushed")
            }
        };
        incident.audits += 1;
        if !incident.regimes.contains(&record.regime) {
            incident.regimes.push(record.regime.clone());
        }
        if !incident.scenarios.contains(&record.scenario) {
            incident.scenarios.push(record.scenario.clone());
        }
        for finding in &record.findings {
            match incident
                .findings
                .iter_mut()
                .find(|c| c.finding.rule == finding.rule)
            {
                Some(merged) => {
                    merged.occurrences += 1;
                    if finding.severity > merged.finding.severity {
                        merged.finding = finding.clone();
                    }
                }
                None => incident.findings.push(CorrelatedFinding {
                    finding: finding.clone(),
                    occurrences: 1,
                    escalated: false,
                }),
            }
        }
    }
    for incident in &mut incidents {
        // Rules stage emits per-audit findings in rule-ID order, but
        // different audits may raise different subsets; restore global
        // rule-ID order across the merge.
        incident.findings.sort_by_key(|c| c.finding.rule);
        for merged in &mut incident.findings {
            if merged.occurrences >= 2 && merged.finding.rule.is_backdoor_evidence() {
                merged.escalated = true;
                merged.finding.severity = merged.finding.severity.escalated();
            }
        }
    }
    incidents
}

impl ToJson for AuditRecord {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("model", self.model.to_json()),
            ("regime", self.regime.to_json()),
            ("scenario", self.scenario.to_json()),
            ("signals", self.signals.to_json()),
            (
                "findings",
                Value::Array(self.findings.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for AuditRecord {
    fn from_json(value: &Value) -> JsonResult<Self> {
        let mut findings = Vec::new();
        for f in value
            .require("findings")?
            .as_array()
            .ok_or_else(|| JsonError::new("findings must be an array"))?
        {
            findings.push(Finding::from_json(f)?);
        }
        Ok(AuditRecord {
            model: String::from_json(value.require("model")?)?,
            regime: String::from_json(value.require("regime")?)?,
            scenario: String::from_json(value.require("scenario")?)?,
            signals: Signals::from_json(value.require("signals")?)?,
            findings,
        })
    }
}

impl ToJson for CorrelatedFinding {
    fn to_json(&self) -> Value {
        // Inline the representative finding's fields so each correlated
        // finding reads as one flat object in incident.json.
        let Value::Object(mut fields) = self.finding.to_json() else {
            unreachable!("Finding serializes as an object")
        };
        fields.push(("occurrences".to_string(), self.occurrences.to_json()));
        fields.push(("escalated".to_string(), self.escalated.to_json()));
        Value::Object(fields)
    }
}

impl FromJson for CorrelatedFinding {
    fn from_json(value: &Value) -> JsonResult<Self> {
        Ok(CorrelatedFinding {
            finding: Finding::from_json(value)?,
            occurrences: u64::from_json(value.require("occurrences")?)?,
            escalated: bool::from_json(value.require("escalated")?)?,
        })
    }
}

impl ToJson for ModelIncident {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("model", self.model.to_json()),
            ("audits", self.audits.to_json()),
            (
                "regimes",
                Value::Array(self.regimes.iter().map(ToJson::to_json).collect()),
            ),
            (
                "scenarios",
                Value::Array(self.scenarios.iter().map(ToJson::to_json).collect()),
            ),
            ("action", self.action.as_str().to_string().to_json()),
            (
                "findings",
                Value::Array(self.findings.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for ModelIncident {
    fn from_json(value: &Value) -> JsonResult<Self> {
        let action_str = String::from_json(value.require("action")?)?;
        let action = crate::respond::Action::from_str_opt(&action_str)
            .ok_or_else(|| JsonError::new(format!("unknown action {action_str:?}")))?;
        let mut findings = Vec::new();
        for f in value
            .require("findings")?
            .as_array()
            .ok_or_else(|| JsonError::new("findings must be an array"))?
        {
            findings.push(CorrelatedFinding::from_json(f)?);
        }
        let mut regimes = Vec::new();
        for r in value
            .require("regimes")?
            .as_array()
            .ok_or_else(|| JsonError::new("regimes must be an array"))?
        {
            regimes.push(String::from_json(r)?);
        }
        let mut scenarios = Vec::new();
        for s in value
            .require("scenarios")?
            .as_array()
            .ok_or_else(|| JsonError::new("scenarios must be an array"))?
        {
            scenarios.push(String::from_json(s)?);
        }
        Ok(ModelIncident {
            model: String::from_json(value.require("model")?)?,
            audits: u64::from_json(value.require("audits")?)?,
            regimes,
            scenarios,
            findings,
            action,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RulePolicy, Severity, Signals};

    fn audit(model: &str, score: f32, prompted_accuracy: f32) -> AuditRecord {
        let signals = Signals {
            score,
            backdoored: score > 0.5,
            prompted_accuracy,
            queries: 100,
            accuracy_queries: 20,
            ..Signals::default()
        };
        AuditRecord {
            model: model.into(),
            regime: "full".into(),
            scenario: "downstream".into(),
            findings: RulePolicy::default().evaluate(&signals),
            signals,
        }
    }

    #[test]
    fn groups_by_fingerprint_in_first_seen_order() {
        let incidents = correlate(&[
            audit("mB", 0.9, 0.1),
            audit("mA", 0.2, 0.8),
            audit("mB", 0.9, 0.1),
        ]);
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].model, "mB");
        assert_eq!(incidents[0].audits, 2);
        assert_eq!(incidents[1].model, "mA");
        assert_eq!(incidents[1].audits, 1);
        assert!(incidents[1].findings.is_empty());
    }

    #[test]
    fn persistence_escalates_backdoor_evidence_only() {
        let mut degraded = audit("mB", 0.9, 0.1);
        degraded.signals.penalized_candidates = 3;
        degraded.findings = RulePolicy::default().evaluate(&degraded.signals);
        let mut degraded2 = degraded.clone();
        degraded2.findings = RulePolicy::default().evaluate(&degraded2.signals);
        let incidents = correlate(&[degraded, degraded2]);
        let findings = &incidents[0].findings;
        let b002 = findings
            .iter()
            .find(|f| f.finding.rule.code() == "B002")
            .unwrap();
        assert_eq!(b002.occurrences, 2);
        assert!(b002.escalated);
        assert_eq!(b002.finding.severity, Severity::Critical); // High escalated
        let b004 = findings
            .iter()
            .find(|f| f.finding.rule.code() == "B004")
            .unwrap();
        assert_eq!(b004.occurrences, 2);
        assert!(!b004.escalated, "integrity rules never escalate");
    }

    #[test]
    fn single_occurrence_never_escalates() {
        let incidents = correlate(&[audit("mB", 0.95, 0.05)]);
        assert!(incidents[0].findings.iter().all(|f| !f.escalated));
        assert!(incidents[0].has_backdoor_evidence());
        assert_eq!(incidents[0].max_severity(), Some(Severity::Critical));
    }

    #[test]
    fn merged_findings_keep_rule_id_order_across_disjoint_audits() {
        // First audit raises only B011; the second raises B001/B002/B003.
        let mut cache_only = audit("mC", 0.2, 0.9);
        cache_only.signals.cache_evictions = 5;
        cache_only.findings = RulePolicy::default().evaluate(&cache_only.signals);
        let incidents = correlate(&[cache_only, audit("mC", 0.9, 0.1)]);
        let codes: Vec<&str> = incidents[0]
            .findings
            .iter()
            .map(|f| f.finding.rule.code())
            .collect();
        assert_eq!(codes, ["B001", "B002", "B003", "B011"]);
    }

    #[test]
    fn regimes_collect_distinct_in_first_seen_order() {
        let mut label_only = audit("mB", 0.9, 0.1);
        label_only.regime = "label_only".into();
        let incidents = correlate(&[
            audit("mB", 0.9, 0.1),
            label_only,
            audit("mB", 0.9, 0.1),
            audit("mA", 0.2, 0.8),
        ]);
        assert_eq!(incidents[0].regimes, ["full", "label_only"]);
        assert_eq!(incidents[1].regimes, ["full"]);
    }

    #[test]
    fn scenarios_collect_distinct_in_first_seen_order() {
        let mut backbone = audit("mB", 0.9, 0.1);
        backbone.scenario = "backbone".into();
        let incidents = correlate(&[
            audit("mB", 0.9, 0.1),
            backbone,
            audit("mB", 0.9, 0.1),
            audit("mA", 0.2, 0.8),
        ]);
        assert_eq!(incidents[0].scenarios, ["downstream", "backbone"]);
        assert_eq!(incidents[1].scenarios, ["downstream"]);
    }

    #[test]
    fn record_and_incident_round_trip() {
        let record = audit("mB", 0.9, 0.1);
        assert_eq!(AuditRecord::from_json(&record.to_json()).unwrap(), record);
        let incidents = correlate(&[record.clone(), record]);
        let incident = &incidents[0];
        assert_eq!(
            ModelIncident::from_json(&incident.to_json()).unwrap(),
            *incident
        );
    }
}
