//! Thread-local audit sink: how detection code hands [`AuditRecord`]s to
//! whoever owns artifact emission, without threading a collector through
//! every call signature.
//!
//! Mirrors `bprom_obs`'s thread-local telemetry session: the bench
//! harness's `TelemetryGuard` calls [`install`] at run start, detection
//! code calls [`record`] per audited model (a no-op when nothing is
//! installed — library users pay nothing), and the guard [`drain`]s the
//! records into an `incident.json` on drop. Thread-local (not global) so
//! parallel tests cannot contaminate each other's incident reports.

use crate::correlate::AuditRecord;
use std::cell::RefCell;

thread_local! {
    static SINK: RefCell<Option<Vec<AuditRecord>>> = const { RefCell::new(None) };
}

/// Starts collecting audit records on this thread, discarding any
/// previously collected ones.
pub fn install() {
    SINK.with(|sink| *sink.borrow_mut() = Some(Vec::new()));
}

/// Whether a sink is currently installed on this thread.
pub fn installed() -> bool {
    SINK.with(|sink| sink.borrow().is_some())
}

/// Hands one audit's record to the installed sink. A no-op when no sink
/// is installed, so detection code can call this unconditionally.
pub fn record(record: AuditRecord) {
    SINK.with(|sink| {
        if let Some(records) = sink.borrow_mut().as_mut() {
            records.push(record);
        }
    });
}

/// Takes every collected record and uninstalls the sink. Returns an
/// empty vec when no sink was installed.
pub fn drain() -> Vec<AuditRecord> {
    SINK.with(|sink| sink.borrow_mut().take().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Signals;

    fn sample(model: &str) -> AuditRecord {
        AuditRecord {
            model: model.into(),
            regime: "full".into(),
            scenario: "downstream".into(),
            signals: Signals::default(),
            findings: Vec::new(),
        }
    }

    #[test]
    fn records_only_while_installed() {
        assert!(!installed());
        record(sample("dropped"));
        assert!(drain().is_empty());

        install();
        assert!(installed());
        record(sample("a"));
        record(sample("b"));
        let records = drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].model, "a");
        assert!(!installed(), "drain uninstalls");
        assert!(drain().is_empty());
    }

    #[test]
    fn reinstall_discards_previous_records() {
        install();
        record(sample("stale"));
        install();
        record(sample("fresh"));
        let records = drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].model, "fresh");
    }
}
