//! Explainable verdicts for the BPROM pipeline.
//!
//! The detector's raw output is one probability; an operable black-box
//! auditor must explain *why* a model was flagged. This crate turns every
//! detection signal into a [`Finding`] with a **stable rule ID**
//! (`B001` prompted-accuracy collapse, `B002` subspace inconsistency,
//! `B003` forest vote margin, ... — see [`RuleId`]), a severity, a
//! human-readable reason, and the concrete evidence values, then flows
//! findings through a four-stage pipeline:
//!
//! 1. **collect** — the caller distills one audit into [`Signals`]
//!    (scores, prompted accuracy, query/fault/cache accounting; no
//!    wall-clock, so downstream artifacts are run-to-run byte-stable).
//! 2. **rules** — [`RulePolicy::evaluate`] matches every registered rule
//!    against the signals and emits findings in rule-ID order.
//! 3. **correlate** — [`correlate`] merges repeated audits of the same
//!    model fingerprint over time into one [`ModelIncident`] per model,
//!    escalating backdoor-evidence rules that fire persistently.
//! 4. **respond** — [`respond`] assigns each incident an [`Action`] under
//!    the active [`Mode`]: **learning** records findings without ever
//!    flagging, **strict** flags or quarantines on backdoor evidence.
//!
//! The result serializes as a versioned, machine-readable
//! [`IncidentReport`] (`incident.json`, schema checked by the zero-dep
//! [`validate_incident`]). [`render`] is the single formatting path both
//! `Verdict`'s `Display` and the experiment binaries use, so human and
//! JSON outputs cannot drift.
//!
//! # Example
//!
//! ```
//! use bprom_verdict::{Mode, RulePolicy, Signals, VerdictPipeline};
//!
//! let mut pipeline = VerdictPipeline::new("demo", RulePolicy::default(), Mode::Strict);
//! let mut signals = Signals::default();
//! signals.score = 0.92;
//! signals.backdoored = true;
//! signals.prompted_accuracy = 0.1;
//! signals.queries = 1200;
//! signals.accuracy_queries = 120;
//! pipeline.collect("m0123456789abcdef", signals);
//! let report = pipeline.report();
//! assert_eq!(report.quarantined, 1);
//! assert!(bprom_verdict::validate_incident(
//!     &bprom_obs::Value::parse(&report.to_json_string()).unwrap()
//! ).is_ok());
//! ```

mod correlate;
mod incident;
mod render;
mod respond;
mod rules;
pub mod sink;

pub use correlate::{correlate, AuditRecord, CorrelatedFinding, ModelIncident};
pub use incident::{validate_incident, IncidentReport, INCIDENT_SCHEMA_VERSION};
pub use render::{render, render_fleet, summarize_findings, Timing};
pub use respond::{respond, Action, Mode, MODE_ENV};
pub use rules::{Finding, RuleId, RulePolicy, Severity, Signals};

/// The collect → rules → correlate → respond pipeline as one stateful
/// facade: feed it one [`Signals`] per audit and ask for the final
/// [`IncidentReport`].
#[derive(Debug, Clone)]
pub struct VerdictPipeline {
    label: String,
    policy: RulePolicy,
    mode: Mode,
    records: Vec<AuditRecord>,
}

impl VerdictPipeline {
    /// A fresh pipeline. `label` names the run in the incident report.
    pub fn new(label: impl Into<String>, policy: RulePolicy, mode: Mode) -> Self {
        VerdictPipeline {
            label: label.into(),
            policy,
            mode,
            records: Vec::new(),
        }
    }

    /// Collect stage: ingest one audit of `model` (a stable fingerprint)
    /// and run the rules stage over its signals. Returns the resulting
    /// record (with findings) for inspection.
    pub fn collect(&mut self, model: impl Into<String>, signals: Signals) -> &AuditRecord {
        self.collect_in_regime(model, "full", signals)
    }

    /// [`VerdictPipeline::collect`] with an explicit oracle-regime wire
    /// string (`"full"`, `"quantized:<d>"`, `"top_k:<k>"`,
    /// `"label_only"`) recorded on the audit. The scenario defaults to
    /// `"downstream"`; use [`VerdictPipeline::collect_in_scenario`] for
    /// backbone-scenario audits.
    pub fn collect_in_regime(
        &mut self,
        model: impl Into<String>,
        regime: impl Into<String>,
        signals: Signals,
    ) -> &AuditRecord {
        self.collect_in_scenario(model, regime, "downstream", signals)
    }

    /// [`VerdictPipeline::collect_in_regime`] with an explicit workload
    /// scenario wire string (`"downstream"`, `"backbone"`) recorded on
    /// the audit.
    pub fn collect_in_scenario(
        &mut self,
        model: impl Into<String>,
        regime: impl Into<String>,
        scenario: impl Into<String>,
        signals: Signals,
    ) -> &AuditRecord {
        let findings = self.policy.evaluate(&signals);
        self.records.push(AuditRecord {
            model: model.into(),
            regime: regime.into(),
            scenario: scenario.into(),
            signals,
            findings,
        });
        self.records.last().expect("just pushed")
    }

    /// Ingest an audit whose rules stage already ran (e.g. an
    /// `AuditRecord` carried by a `DetectionReport`).
    pub fn ingest(&mut self, record: AuditRecord) {
        self.records.push(record);
    }

    /// Number of audits collected so far.
    pub fn audits(&self) -> usize {
        self.records.len()
    }

    /// Correlate + respond: the final machine-readable incident report.
    pub fn report(&self) -> IncidentReport {
        IncidentReport::assemble(&self.label, &self.policy, self.mode, &self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suspicious_signals() -> Signals {
        Signals {
            score: 0.92,
            backdoored: true,
            prompted_accuracy: 0.08,
            queries: 1000,
            prompt_queries: 800,
            accuracy_queries: 100,
            probe_queries: 100,
            faults_injected: 50,
            retries: 40,
            retry_exhausted: 1,
            degraded_responses: 10,
            penalized_candidates: 2,
            cache_hits: 100,
            cache_misses: 900,
            cache_evictions: 3,
            evasive_responses: 0,
            clean_downstream_training: false,
        }
    }

    #[test]
    fn pipeline_end_to_end_strict_quarantines() {
        let mut p = VerdictPipeline::new("t", RulePolicy::default(), Mode::Strict);
        p.collect("mA", suspicious_signals());
        p.collect("mA", suspicious_signals());
        p.collect("mB", Signals::default());
        let report = p.report();
        assert_eq!(report.audits, 3);
        assert_eq!(report.incidents.len(), 2);
        let a = &report.incidents[0];
        assert_eq!(a.model, "mA");
        assert_eq!(a.audits, 2);
        assert_eq!(a.action, Action::Quarantine);
        // Every registered rule fires on the crafted signals.
        let codes: Vec<&str> = a.findings.iter().map(|f| f.finding.rule.code()).collect();
        assert_eq!(codes, ["B001", "B002", "B003", "B004", "B010", "B011"]);
        // Repeated backdoor evidence escalates.
        assert!(a.findings[0].escalated);
        assert_eq!(a.findings[0].occurrences, 2);
        let b = &report.incidents[1];
        assert!(b.findings.is_empty());
        assert_eq!(b.action, Action::None);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.flagged, 0);
    }

    #[test]
    fn learning_mode_records_identical_evidence_without_flagging() {
        let strict = {
            let mut p = VerdictPipeline::new("t", RulePolicy::default(), Mode::Strict);
            p.collect("mA", suspicious_signals());
            p.report()
        };
        let learning = {
            let mut p = VerdictPipeline::new("t", RulePolicy::default(), Mode::Learning);
            p.collect("mA", suspicious_signals());
            p.report()
        };
        // Same evidence, same findings — only the response differs.
        assert_eq!(strict.incidents[0].findings, learning.incidents[0].findings);
        assert_eq!(strict.incidents[0].action, Action::Quarantine);
        assert_eq!(learning.incidents[0].action, Action::Record);
        assert_eq!(learning.quarantined, 0);
        assert_eq!(learning.flagged, 0);
    }

    #[test]
    fn report_json_round_trips_and_validates() {
        let mut p = VerdictPipeline::new("round-trip", RulePolicy::default(), Mode::Strict);
        p.collect("mA", suspicious_signals());
        p.collect("mB", Signals::default());
        let report = p.report();
        let text = report.to_json_string();
        let value = bprom_obs::Value::parse(&text).unwrap();
        validate_incident(&value).unwrap();
        let back = IncidentReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }
}
