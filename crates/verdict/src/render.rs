//! The single human-readable formatting path for verdicts and findings.
//!
//! `Verdict`'s `Display` in `bprom-core` and the bench binaries' report
//! printing both call [`render`], so the human text and the machine
//! `incident.json` are views of the same [`Signals`] and cannot drift.

use crate::rules::{Finding, Signals};

/// Wall-clock view of one inspection, kept separate from [`Signals`] so
/// the byte-stable incident artifacts never carry timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timing {
    /// Wall-clock of the prompt-learning phase, in nanoseconds.
    pub prompt_ns: u64,
    /// Wall-clock of the probe + meta-prediction phase, in nanoseconds.
    pub probe_ns: u64,
    /// Total inspection wall-clock, in nanoseconds.
    pub total_ns: u64,
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.2}s", ns as f64 / 1e9)
}

/// Formats one audit's signals as the canonical one-line human verdict:
///
/// ```text
/// BACKDOORED (score 0.92, prompted acc 0.08) — 1000 queries (800 prompt
/// + 100 accuracy + 100 probe) in 1.20s (1.00s prompt, 0.20s probe)
/// [cache: ...] [hostile oracle: ...]
/// ```
///
/// With `timing` = `None` (e.g. rendering from a timing-free incident
/// artifact) the wall-clock clause is omitted. The cache and
/// hostile-oracle suffixes appear only when those subsystems were
/// active, exactly as `Verdict`'s `Display` always has.
pub fn render(s: &Signals, timing: Option<&Timing>) -> String {
    let mut out = format!(
        "{} (score {:.2}, prompted acc {:.2}) — {} queries ({} prompt + {} accuracy + {} probe)",
        if s.backdoored { "BACKDOORED" } else { "clean" },
        s.score,
        s.prompted_accuracy,
        s.queries,
        s.prompt_queries,
        s.accuracy_queries,
        s.probe_queries,
    );
    if let Some(t) = timing {
        out.push_str(&format!(
            " in {} ({} prompt, {} probe)",
            fmt_secs(t.total_ns),
            fmt_secs(t.prompt_ns),
            fmt_secs(t.probe_ns),
        ));
    }
    if s.cache_hits + s.cache_misses > 0 {
        out.push_str(&format!(
            " [cache: {} hits / {} misses, {} evictions]",
            s.cache_hits, s.cache_misses, s.cache_evictions,
        ));
    }
    let degraded = s.faults_injected > 0 || s.degraded_responses > 0 || s.retry_exhausted > 0;
    if degraded || s.retries > 0 {
        out.push_str(&format!(
            " [hostile oracle: {} faults, {} retries, {} exhausted, {} degraded responses, {} penalized candidates]",
            s.faults_injected,
            s.retries,
            s.retry_exhausted,
            s.degraded_responses,
            s.penalized_candidates,
        ));
    }
    out
}

/// One-line summary of a finding list for log output: rule codes with
/// severities, e.g. `B001(high) B002(critical) B011(advisory)`, or
/// `no findings` when empty.
pub fn summarize_findings(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "no findings".to_string();
    }
    findings
        .iter()
        .map(|f| format!("{}({})", f.rule.code(), f.severity.as_str()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RulePolicy;

    fn busy_signals() -> Signals {
        Signals {
            score: 0.92,
            backdoored: true,
            prompted_accuracy: 0.08,
            queries: 1000,
            prompt_queries: 800,
            accuracy_queries: 100,
            probe_queries: 100,
            faults_injected: 50,
            retries: 40,
            retry_exhausted: 1,
            degraded_responses: 10,
            penalized_candidates: 2,
            cache_hits: 100,
            cache_misses: 900,
            cache_evictions: 3,
        }
    }

    #[test]
    fn renders_full_line_with_all_suffixes() {
        let timing = Timing {
            prompt_ns: 1_000_000_000,
            probe_ns: 200_000_000,
            total_ns: 1_200_000_000,
        };
        let line = render(&busy_signals(), Some(&timing));
        assert_eq!(
            line,
            "BACKDOORED (score 0.92, prompted acc 0.08) — 1000 queries \
             (800 prompt + 100 accuracy + 100 probe) in 1.20s (1.00s prompt, 0.20s probe) \
             [cache: 100 hits / 900 misses, 3 evictions] \
             [hostile oracle: 50 faults, 40 retries, 1 exhausted, 10 degraded responses, \
             2 penalized candidates]"
        );
    }

    #[test]
    fn quiet_signals_render_without_suffixes() {
        let s = Signals {
            score: 0.2,
            prompted_accuracy: 0.85,
            queries: 300,
            prompt_queries: 200,
            accuracy_queries: 50,
            probe_queries: 50,
            ..Signals::default()
        };
        let line = render(&s, None);
        assert_eq!(
            line,
            "clean (score 0.20, prompted acc 0.85) — 300 queries (200 prompt + 50 accuracy + 50 probe)"
        );
        assert!(!line.contains("cache"));
        assert!(!line.contains("hostile"));
    }

    #[test]
    fn summarize_lists_codes_with_severities() {
        let findings = RulePolicy::default().evaluate(&busy_signals());
        let summary = summarize_findings(&findings);
        assert_eq!(
            summary,
            "B001(high) B002(critical) B003(medium) B004(low) B010(low) B011(advisory)"
        );
        assert_eq!(summarize_findings(&[]), "no findings");
    }
}
