//! The single human-readable formatting path for verdicts and findings.
//!
//! `Verdict`'s `Display` in `bprom-core` and the bench binaries' report
//! printing both call [`render`], so the human text and the machine
//! `incident.json` are views of the same [`Signals`] and cannot drift.
//! Fleet-level roll-ups go through [`render_fleet`] for the same
//! reason: the audit engine's summary and the `incident.json` it writes
//! share one [`crate::IncidentReport`].

use crate::incident::IncidentReport;
use crate::rules::{Finding, Signals};

/// Wall-clock view of one inspection, kept separate from [`Signals`] so
/// the byte-stable incident artifacts never carry timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timing {
    /// Wall-clock of the prompt-learning phase, in nanoseconds.
    pub prompt_ns: u64,
    /// Wall-clock of the probe + meta-prediction phase, in nanoseconds.
    pub probe_ns: u64,
    /// Total inspection wall-clock, in nanoseconds.
    pub total_ns: u64,
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.2}s", ns as f64 / 1e9)
}

/// Formats one audit's signals as the canonical one-line human verdict:
///
/// ```text
/// BACKDOORED (score 0.92, prompted acc 0.08) — 1000 queries (800 prompt
/// + 100 accuracy + 100 probe) in 1.20s (1.00s prompt, 0.20s probe)
/// [cache: ...] [hostile oracle: ...]
/// ```
///
/// With `timing` = `None` (e.g. rendering from a timing-free incident
/// artifact) the wall-clock clause is omitted. The cache and
/// hostile-oracle suffixes appear only when those subsystems were
/// active, exactly as `Verdict`'s `Display` always has.
pub fn render(s: &Signals, timing: Option<&Timing>) -> String {
    let mut out = format!(
        "{} (score {:.2}, prompted acc {:.2}) — {} queries ({} prompt + {} accuracy + {} probe)",
        if s.backdoored { "BACKDOORED" } else { "clean" },
        s.score,
        s.prompted_accuracy,
        s.queries,
        s.prompt_queries,
        s.accuracy_queries,
        s.probe_queries,
    );
    if let Some(t) = timing {
        out.push_str(&format!(
            " in {} ({} prompt, {} probe)",
            fmt_secs(t.total_ns),
            fmt_secs(t.prompt_ns),
            fmt_secs(t.probe_ns),
        ));
    }
    if s.cache_hits + s.cache_misses > 0 {
        out.push_str(&format!(
            " [cache: {} hits / {} misses, {} evictions]",
            s.cache_hits, s.cache_misses, s.cache_evictions,
        ));
    }
    let degraded = s.faults_injected > 0 || s.degraded_responses > 0 || s.retry_exhausted > 0;
    if degraded || s.retries > 0 {
        out.push_str(&format!(
            " [hostile oracle: {} faults, {} retries, {} exhausted, {} degraded responses, {} penalized candidates]",
            s.faults_injected,
            s.retries,
            s.retry_exhausted,
            s.degraded_responses,
            s.penalized_candidates,
        ));
    }
    out
}

/// Fleet roll-up of an incident report: one header line with the audit
/// and enforcement tallies, then one line per model incident (in the
/// report's first-audited order) with its audit count, merged findings,
/// and action.
///
/// ```text
/// fleet "mlaas" (strict): 8 audits over 6 models — 1 flagged, 1 quarantined
///   m00000000000000aa  2 audits  quarantine  B001(high) B002(critical)
///   m00000000000000bb  1 audit   none        no findings
/// ```
pub fn render_fleet(report: &IncidentReport) -> String {
    let mut out = format!(
        "fleet \"{}\" ({}): {} audits over {} models — {} flagged, {} quarantined",
        report.label,
        report.mode.as_str(),
        report.audits,
        report.incidents.len(),
        report.flagged,
        report.quarantined,
    );
    for incident in &report.incidents {
        let findings: Vec<Finding> = incident
            .findings
            .iter()
            .map(|f| f.finding.clone())
            .collect();
        out.push_str(&format!(
            "\n  {}  {} audit{}  {:<10}  {}",
            incident.model,
            incident.audits,
            if incident.audits == 1 { " " } else { "s" },
            incident.action.as_str(),
            summarize_findings(&findings),
        ));
    }
    out
}

/// One-line summary of a finding list for log output: rule codes with
/// severities, e.g. `B001(high) B002(critical) B011(advisory)`, or
/// `no findings` when empty.
pub fn summarize_findings(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "no findings".to_string();
    }
    findings
        .iter()
        .map(|f| format!("{}({})", f.rule.code(), f.severity.as_str()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RulePolicy;

    fn busy_signals() -> Signals {
        Signals {
            score: 0.92,
            backdoored: true,
            prompted_accuracy: 0.08,
            queries: 1000,
            prompt_queries: 800,
            accuracy_queries: 100,
            probe_queries: 100,
            faults_injected: 50,
            retries: 40,
            retry_exhausted: 1,
            degraded_responses: 10,
            penalized_candidates: 2,
            cache_hits: 100,
            cache_misses: 900,
            cache_evictions: 3,
            evasive_responses: 0,
            clean_downstream_training: false,
        }
    }

    #[test]
    fn renders_full_line_with_all_suffixes() {
        let timing = Timing {
            prompt_ns: 1_000_000_000,
            probe_ns: 200_000_000,
            total_ns: 1_200_000_000,
        };
        let line = render(&busy_signals(), Some(&timing));
        assert_eq!(
            line,
            "BACKDOORED (score 0.92, prompted acc 0.08) — 1000 queries \
             (800 prompt + 100 accuracy + 100 probe) in 1.20s (1.00s prompt, 0.20s probe) \
             [cache: 100 hits / 900 misses, 3 evictions] \
             [hostile oracle: 50 faults, 40 retries, 1 exhausted, 10 degraded responses, \
             2 penalized candidates]"
        );
    }

    #[test]
    fn quiet_signals_render_without_suffixes() {
        let s = Signals {
            score: 0.2,
            prompted_accuracy: 0.85,
            queries: 300,
            prompt_queries: 200,
            accuracy_queries: 50,
            probe_queries: 50,
            ..Signals::default()
        };
        let line = render(&s, None);
        assert_eq!(
            line,
            "clean (score 0.20, prompted acc 0.85) — 300 queries (200 prompt + 50 accuracy + 50 probe)"
        );
        assert!(!line.contains("cache"));
        assert!(!line.contains("hostile"));
    }

    #[test]
    fn render_fleet_rolls_up_per_model_lines() {
        use crate::correlate::AuditRecord;
        use crate::respond::Mode;
        let policy = RulePolicy::default();
        let hot = busy_signals();
        let quiet = Signals {
            score: 0.1,
            prompted_accuracy: 0.9,
            queries: 100,
            prompt_queries: 80,
            accuracy_queries: 10,
            probe_queries: 10,
            ..Signals::default()
        };
        let record = |model: &str, s: &Signals| AuditRecord {
            model: model.to_string(),
            regime: "full".to_string(),
            scenario: "downstream".to_string(),
            findings: policy.evaluate(s),
            signals: *s,
        };
        // Two audits of the hot model (escalation), one of the quiet one.
        let records = vec![
            record("m00000000000000aa", &hot),
            record("m00000000000000bb", &quiet),
            record("m00000000000000aa", &hot),
        ];
        let report = crate::IncidentReport::assemble("fleet-test", &policy, Mode::Strict, &records);
        let text = render_fleet(&report);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 2, "header + one line per model:\n{text}");
        assert!(
            lines[0].contains("fleet \"fleet-test\" (strict): 3 audits over 2 models"),
            "{text}"
        );
        assert!(lines[1].contains("m00000000000000aa"), "{text}");
        assert!(lines[1].contains("2 audits"), "{text}");
        assert!(lines[1].contains("B001"), "{text}");
        assert!(lines[2].contains("m00000000000000bb"), "{text}");
        assert!(lines[2].contains("1 audit"), "{text}");
        assert!(lines[2].contains("no findings"), "{text}");
    }

    #[test]
    fn summarize_lists_codes_with_severities() {
        let findings = RulePolicy::default().evaluate(&busy_signals());
        let summary = summarize_findings(&findings);
        assert_eq!(
            summary,
            "B001(high) B002(critical) B003(medium) B004(low) B010(low) B011(advisory)"
        );
        assert_eq!(summarize_findings(&[]), "no findings");
    }
}
