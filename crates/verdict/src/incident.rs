//! The versioned, machine-readable incident report (`incident.json`).
//!
//! Schema version policy: `schema_version` bumps on any
//! **backward-incompatible** change (field removed/renamed/retyped,
//! enum value removed, semantics changed). Purely additive fields do
//! *not* bump the version; consumers must ignore unknown keys. Rule IDs
//! are stable independently of the schema version: an ID is never
//! reused and never changes meaning (see `RuleId`). [`validate_incident`]
//! checks a parsed JSON value against the current schema with no
//! external dependencies, so CI can gate emitted artifacts.

use crate::correlate::{correlate, AuditRecord, ModelIncident};
use crate::respond::{respond, Action, Mode};
use crate::rules::{RuleId, RulePolicy, Severity};
use bprom_obs::{FromJson, JsonError, JsonResult, ToJson, Value};

/// Current `incident.json` schema version.
pub const INCIDENT_SCHEMA_VERSION: u64 = 1;

/// The pipeline's final artifact: everything the run concluded, per
/// model, plus fleet-level tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReport {
    /// Schema version of this document (see module docs for the policy).
    pub schema_version: u64,
    /// Run label the pipeline was created with.
    pub label: String,
    /// Response mode the respond stage ran under.
    pub mode: Mode,
    /// Thresholds the rules stage matched against.
    pub policy: RulePolicy,
    /// Total audits collected across all models.
    pub audits: u64,
    /// Per-model incidents, in first-audited order.
    pub incidents: Vec<ModelIncident>,
    /// Models whose action is [`Action::Flag`].
    pub flagged: u64,
    /// Models whose action is [`Action::Quarantine`].
    pub quarantined: u64,
    /// `(rule code, models raising it)` tallies, in rule-ID order,
    /// omitting rules no model raised.
    pub findings_by_rule: Vec<(String, u64)>,
}

impl IncidentReport {
    /// Runs correlate + respond over `records` and assembles the report.
    pub fn assemble(
        label: &str,
        policy: &RulePolicy,
        mode: Mode,
        records: &[AuditRecord],
    ) -> IncidentReport {
        let mut incidents = correlate(records);
        respond(&mut incidents, mode);
        let flagged = incidents
            .iter()
            .filter(|i| i.action == Action::Flag)
            .count() as u64;
        let quarantined = incidents
            .iter()
            .filter(|i| i.action == Action::Quarantine)
            .count() as u64;
        let mut findings_by_rule = Vec::new();
        for rule in RuleId::ALL {
            let models = incidents
                .iter()
                .filter(|i| i.findings.iter().any(|f| f.finding.rule == rule))
                .count() as u64;
            if models > 0 {
                findings_by_rule.push((rule.code().to_string(), models));
            }
        }
        IncidentReport {
            schema_version: INCIDENT_SCHEMA_VERSION,
            label: label.to_string(),
            mode,
            policy: *policy,
            audits: records.len() as u64,
            incidents,
            flagged,
            quarantined,
            findings_by_rule,
        }
    }

    /// Pretty-printed JSON document (the exact `incident.json` bytes).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a document produced by [`IncidentReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed JSON or schema mismatch.
    pub fn from_json_str(text: &str) -> JsonResult<IncidentReport> {
        IncidentReport::from_json(&Value::parse(text)?)
    }
}

impl ToJson for IncidentReport {
    fn to_json(&self) -> Value {
        let by_rule: Vec<Value> = self
            .findings_by_rule
            .iter()
            .map(|(rule, models)| {
                Value::object(vec![("rule", rule.to_json()), ("models", models.to_json())])
            })
            .collect();
        Value::object(vec![
            ("schema_version", self.schema_version.to_json()),
            ("label", self.label.to_json()),
            ("mode", self.mode.as_str().to_string().to_json()),
            ("policy", self.policy.to_json()),
            ("audits", self.audits.to_json()),
            ("flagged", self.flagged.to_json()),
            ("quarantined", self.quarantined.to_json()),
            ("findings_by_rule", Value::Array(by_rule)),
            (
                "incidents",
                Value::Array(self.incidents.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for IncidentReport {
    fn from_json(value: &Value) -> JsonResult<Self> {
        let version = u64::from_json(value.require("schema_version")?)?;
        if version != INCIDENT_SCHEMA_VERSION {
            return Err(JsonError::new(format!(
                "unsupported incident schema version {version} (this build reads {INCIDENT_SCHEMA_VERSION})"
            )));
        }
        let mode_str = String::from_json(value.require("mode")?)?;
        let mode = Mode::from_str_opt(&mode_str)
            .ok_or_else(|| JsonError::new(format!("unknown mode {mode_str:?}")))?;
        let mut incidents = Vec::new();
        for i in value
            .require("incidents")?
            .as_array()
            .ok_or_else(|| JsonError::new("incidents must be an array"))?
        {
            incidents.push(ModelIncident::from_json(i)?);
        }
        let mut findings_by_rule = Vec::new();
        for entry in value
            .require("findings_by_rule")?
            .as_array()
            .ok_or_else(|| JsonError::new("findings_by_rule must be an array"))?
        {
            findings_by_rule.push((
                String::from_json(entry.require("rule")?)?,
                u64::from_json(entry.require("models")?)?,
            ));
        }
        Ok(IncidentReport {
            schema_version: version,
            label: String::from_json(value.require("label")?)?,
            mode,
            policy: RulePolicy::from_json(value.require("policy")?)?,
            audits: u64::from_json(value.require("audits")?)?,
            incidents,
            flagged: u64::from_json(value.require("flagged")?)?,
            quarantined: u64::from_json(value.require("quarantined")?)?,
            findings_by_rule,
        })
    }
}

/// Zero-dependency structural validator for an `incident.json` document.
///
/// Checks every constraint the current schema promises — required keys,
/// types, enum values (mode / action / severity / rule code), and the
/// internal consistency of the tallies (`audits` = Σ incident audits,
/// `flagged` / `quarantined` match the per-incident actions, every
/// `findings_by_rule` code resolves). Collects *all* violations instead
/// of stopping at the first, so a CI failure names everything wrong at
/// once.
///
/// # Errors
///
/// Returns the full list of violations (each a human-readable path +
/// reason) when the document does not conform.
pub fn validate_incident(doc: &Value) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    check_u64(doc, "schema_version", &mut errors);
    if let Some(v) = doc.get("schema_version").and_then(Value::as_u64) {
        if v != INCIDENT_SCHEMA_VERSION {
            errors.push(format!(
                "schema_version: expected {INCIDENT_SCHEMA_VERSION}, found {v}"
            ));
        }
    }
    check_str(doc, "label", &mut errors);
    if let Some(mode) = check_str(doc, "mode", &mut errors) {
        if Mode::from_str_opt(mode).is_none() {
            errors.push(format!("mode: unknown value {mode:?}"));
        }
    }
    match doc.get("policy") {
        Some(policy) => {
            for key in [
                "accuracy_collapse",
                "suspicion_score",
                "strong_vote_margin",
                "max_fault_rate",
            ] {
                if policy.get(key).and_then(Value::as_f64).is_none() {
                    errors.push(format!("policy.{key}: expected a number"));
                }
            }
        }
        None => errors.push("policy: missing".to_string()),
    }
    let audits = check_u64(doc, "audits", &mut errors);
    let flagged = check_u64(doc, "flagged", &mut errors);
    let quarantined = check_u64(doc, "quarantined", &mut errors);
    if let Some(entries) = doc.get("findings_by_rule") {
        match entries.as_array() {
            Some(entries) => {
                for (i, entry) in entries.iter().enumerate() {
                    let path = format!("findings_by_rule[{i}]");
                    if let Some(code) = entry.get("rule").and_then(Value::as_str) {
                        if RuleId::from_code(code).is_none() {
                            errors.push(format!("{path}.rule: unknown rule id {code:?}"));
                        }
                    } else {
                        errors.push(format!("{path}.rule: expected a string"));
                    }
                    if entry.get("models").and_then(Value::as_u64).is_none() {
                        errors.push(format!("{path}.models: expected an unsigned integer"));
                    }
                }
            }
            None => errors.push("findings_by_rule: expected an array".to_string()),
        }
    } else {
        errors.push("findings_by_rule: missing".to_string());
    }
    let mut audit_sum = 0u64;
    let mut flag_count = 0u64;
    let mut quarantine_count = 0u64;
    match doc.get("incidents").map(|v| (v, v.as_array())) {
        Some((_, Some(incidents))) => {
            for (i, incident) in incidents.iter().enumerate() {
                let path = format!("incidents[{i}]");
                check_str_at(incident, &path, "model", &mut errors);
                audit_sum += check_u64_at(incident, &path, "audits", &mut errors).unwrap_or(0);
                match incident.get("regimes").map(Value::as_array) {
                    Some(Some(regimes)) => {
                        for (k, regime) in regimes.iter().enumerate() {
                            if regime.as_str().is_none() {
                                errors.push(format!("{path}.regimes[{k}]: expected a string"));
                            }
                        }
                    }
                    Some(None) => errors.push(format!("{path}.regimes: expected an array")),
                    None => errors.push(format!("{path}.regimes: missing")),
                }
                match incident.get("scenarios").map(Value::as_array) {
                    Some(Some(scenarios)) => {
                        for (k, scenario) in scenarios.iter().enumerate() {
                            if scenario.as_str().is_none() {
                                errors.push(format!("{path}.scenarios[{k}]: expected a string"));
                            }
                        }
                    }
                    Some(None) => errors.push(format!("{path}.scenarios: expected an array")),
                    None => errors.push(format!("{path}.scenarios: missing")),
                }
                match check_str_at(incident, &path, "action", &mut errors)
                    .and_then(Action::from_str_opt)
                {
                    Some(Action::Flag) => flag_count += 1,
                    Some(Action::Quarantine) => quarantine_count += 1,
                    Some(_) => {}
                    None => {
                        if incident.get("action").and_then(Value::as_str).is_some() {
                            errors.push(format!("{path}.action: unknown value"));
                        }
                    }
                }
                validate_findings(incident, &path, &mut errors);
            }
        }
        Some((_, None)) => errors.push("incidents: expected an array".to_string()),
        None => errors.push("incidents: missing".to_string()),
    }
    if let Some(audits) = audits {
        if audits != audit_sum && errors.is_empty() {
            errors.push(format!(
                "audits: total {audits} does not equal the per-incident sum {audit_sum}"
            ));
        }
    }
    if let (Some(flagged), true) = (flagged, errors.is_empty()) {
        if flagged != flag_count {
            errors.push(format!(
                "flagged: total {flagged} does not match {flag_count} flag actions"
            ));
        }
    }
    if let (Some(quarantined), true) = (quarantined, errors.is_empty()) {
        if quarantined != quarantine_count {
            errors.push(format!(
                "quarantined: total {quarantined} does not match {quarantine_count} quarantine actions"
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_findings(incident: &Value, path: &str, errors: &mut Vec<String>) {
    let Some(findings) = incident.get("findings") else {
        errors.push(format!("{path}.findings: missing"));
        return;
    };
    let Some(findings) = findings.as_array() else {
        errors.push(format!("{path}.findings: expected an array"));
        return;
    };
    for (j, finding) in findings.iter().enumerate() {
        let fpath = format!("{path}.findings[{j}]");
        match finding.get("rule").and_then(Value::as_str) {
            Some(code) if RuleId::from_code(code).is_some() => {}
            Some(code) => errors.push(format!("{fpath}.rule: unknown rule id {code:?}")),
            None => errors.push(format!("{fpath}.rule: expected a string")),
        }
        match finding.get("severity").and_then(Value::as_str) {
            Some(sev) if Severity::from_str_opt(sev).is_some() => {}
            Some(sev) => errors.push(format!("{fpath}.severity: unknown value {sev:?}")),
            None => errors.push(format!("{fpath}.severity: expected a string")),
        }
        if finding.get("reason").and_then(Value::as_str).is_none() {
            errors.push(format!("{fpath}.reason: expected a string"));
        }
        if finding
            .get("occurrences")
            .and_then(Value::as_u64)
            .is_none_or(|n| n == 0)
        {
            errors.push(format!("{fpath}.occurrences: expected a positive integer"));
        }
        if finding.get("escalated").and_then(Value::as_bool).is_none() {
            errors.push(format!("{fpath}.escalated: expected a bool"));
        }
        match finding.get("evidence").map(Value::as_array) {
            Some(Some(evidence)) => {
                for (k, pair) in evidence.iter().enumerate() {
                    if pair.get("name").and_then(Value::as_str).is_none()
                        || pair.get("value").and_then(Value::as_f64).is_none()
                    {
                        errors.push(format!(
                            "{fpath}.evidence[{k}]: expected {{name: string, value: number}}"
                        ));
                    }
                }
            }
            Some(None) => errors.push(format!("{fpath}.evidence: expected an array")),
            None => errors.push(format!("{fpath}.evidence: missing")),
        }
    }
}

fn check_u64(doc: &Value, key: &str, errors: &mut Vec<String>) -> Option<u64> {
    let found = doc.get(key).and_then(Value::as_u64);
    if found.is_none() {
        errors.push(format!("{key}: expected an unsigned integer"));
    }
    found
}

fn check_u64_at(doc: &Value, path: &str, key: &str, errors: &mut Vec<String>) -> Option<u64> {
    let found = doc.get(key).and_then(Value::as_u64);
    if found.is_none() {
        errors.push(format!("{path}.{key}: expected an unsigned integer"));
    }
    found
}

fn check_str<'a>(doc: &'a Value, key: &str, errors: &mut Vec<String>) -> Option<&'a str> {
    let found = doc.get(key).and_then(Value::as_str);
    if found.is_none() {
        errors.push(format!("{key}: expected a string"));
    }
    found
}

fn check_str_at<'a>(
    doc: &'a Value,
    path: &str,
    key: &str,
    errors: &mut Vec<String>,
) -> Option<&'a str> {
    let found = doc.get(key).and_then(Value::as_str);
    if found.is_none() {
        errors.push(format!("{path}.{key}: expected a string"));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Signals;

    fn sample_report() -> IncidentReport {
        let signals = Signals {
            score: 0.95,
            backdoored: true,
            prompted_accuracy: 0.05,
            queries: 500,
            accuracy_queries: 50,
            cache_evictions: 2,
            ..Signals::default()
        };
        let records = vec![
            AuditRecord {
                model: "mA".into(),
                regime: "full".into(),
                scenario: "downstream".into(),
                findings: RulePolicy::default().evaluate(&signals),
                signals,
            },
            AuditRecord {
                model: "mB".into(),
                regime: "label_only".into(),
                scenario: "backbone".into(),
                signals: Signals::default(),
                findings: Vec::new(),
            },
        ];
        IncidentReport::assemble("sample", &RulePolicy::default(), Mode::Strict, &records)
    }

    #[test]
    fn assemble_tallies_and_summarizes() {
        let report = sample_report();
        assert_eq!(report.schema_version, INCIDENT_SCHEMA_VERSION);
        assert_eq!(report.audits, 2);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.flagged, 0);
        let rules: Vec<&str> = report
            .findings_by_rule
            .iter()
            .map(|(r, _)| r.as_str())
            .collect();
        assert_eq!(rules, ["B001", "B002", "B003", "B011"]);
        assert!(report.findings_by_rule.iter().all(|&(_, n)| n == 1));
    }

    #[test]
    fn emitted_document_validates_and_round_trips() {
        let report = sample_report();
        let text = report.to_json_string();
        let doc = Value::parse(&text).unwrap();
        validate_incident(&doc).unwrap();
        assert_eq!(IncidentReport::from_json_str(&text).unwrap(), report);
    }

    #[test]
    fn validator_collects_all_violations() {
        let doc = Value::object(vec![
            ("schema_version", Value::Num(99.0)),
            ("label", Value::Num(1.0)),
            ("mode", Value::Str("panic".into())),
            ("audits", Value::Str("three".into())),
            ("incidents", Value::Bool(true)),
        ]);
        let errors = validate_incident(&doc).unwrap_err();
        for needle in [
            "schema_version",
            "label",
            "mode",
            "policy",
            "audits",
            "flagged",
            "quarantined",
            "findings_by_rule",
            "incidents",
        ] {
            assert!(
                errors.iter().any(|e| e.contains(needle)),
                "expected a violation mentioning {needle}, got {errors:?}"
            );
        }
    }

    #[test]
    fn validator_rejects_inconsistent_tallies_and_unknown_enums() {
        let report = sample_report();
        let Value::Object(mut fields) = report.to_json() else {
            unreachable!()
        };
        for (key, value) in &mut fields {
            if key == "quarantined" {
                *value = Value::Num(7.0);
            }
        }
        let errors = validate_incident(&Value::Object(fields)).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("quarantined")));

        let mut doc = Value::parse(&report.to_json_string()).unwrap();
        if let Value::Object(fields) = &mut doc {
            for (key, value) in fields {
                if key == "findings_by_rule" {
                    *value = Value::Array(vec![Value::object(vec![
                        ("rule", Value::Str("B999".into())),
                        ("models", Value::Num(1.0)),
                    ])]);
                }
            }
        }
        let errors = validate_incident(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("B999")));
    }

    #[test]
    fn reader_rejects_future_schema_versions() {
        let report = sample_report();
        let text = report
            .to_json_string()
            .replace("\"schema_version\": 1", "\"schema_version\": 2");
        let err = IncidentReport::from_json_str(&text).unwrap_err();
        assert!(err.reason.contains("schema version"));
    }
}
