//! The rules stage: the stable rule-ID registry and the policy that
//! matches rules against one audit's collected signals.
//!
//! Rule IDs are **stable identifiers**: once shipped, an ID never changes
//! meaning and is never reused. Downstream tooling (dashboards, fleet
//! triage, incident diffing) keys on the ID, not the reason string. The
//! registry table lives in `DESIGN.md` §5g.

use bprom_obs::{FromJson, JsonError, JsonResult, ToJson, Value};

/// Stable identifiers for every detection rule BPROM can raise.
///
/// `B00x` rules are **backdoor evidence** (signals from the paper's
/// detection pipeline); `B01x` rules are **audit-integrity** signals
/// (the oracle or the audit infrastructure misbehaved — they qualify the
/// verdict, they do not imply a backdoor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `B001` — prompted-accuracy collapse: the CMA-ES-prompted model's
    /// accuracy on the target split fell below the policy floor (the
    /// paper's headline statistic for backdoored models).
    B001,
    /// `B002` — subspace inconsistency: the meta-classifier's
    /// backdoor probability exceeded the suspicion threshold.
    B002,
    /// `B003` — forest vote margin: the random-forest vote was not just
    /// past the threshold but decisively so (margin above the policy
    /// floor), i.e. strong ensemble agreement on the backdoor class.
    B003,
    /// `B004` — search degradation: CMA-ES candidates were penalized or
    /// queries exhausted their retry budget, so the prompt search ran on
    /// partial information.
    B004,
    /// `B010` — fault-rate anomaly: the oracle injected faults at a rate
    /// above the policy ceiling (hostile or unhealthy provider).
    B010,
    /// `B011` — cache anomaly: the bounded query cache evicted entries,
    /// so repeated audit content may re-spend provider queries.
    B011,
    /// `B012` — oracle evasion suspected: the endpoint fabricated
    /// responses instead of answering honestly (an adaptive attacker's
    /// probe-detection tests tripped). The audit's features were
    /// computed on lies; the verdict must not be trusted either way.
    B012,
    /// `B013` — backbone-implanted backdoor suspected: prompted-accuracy
    /// collapse on a system whose downstream training data is attested
    /// clean (the backbone scenario). The poison cannot have entered
    /// through the prompt-tuning data, so the frozen backbone itself is
    /// the suspected carrier (the BadBone threat model).
    B013,
}

impl RuleId {
    /// Every registered rule, in ID order.
    pub const ALL: [RuleId; 8] = [
        RuleId::B001,
        RuleId::B002,
        RuleId::B003,
        RuleId::B004,
        RuleId::B010,
        RuleId::B011,
        RuleId::B012,
        RuleId::B013,
    ];

    /// The stable wire code (`"B001"`, ...).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::B001 => "B001",
            RuleId::B002 => "B002",
            RuleId::B003 => "B003",
            RuleId::B004 => "B004",
            RuleId::B010 => "B010",
            RuleId::B011 => "B011",
            RuleId::B012 => "B012",
            RuleId::B013 => "B013",
        }
    }

    /// One-line human title.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::B001 => "prompted-accuracy collapse",
            RuleId::B002 => "subspace inconsistency",
            RuleId::B003 => "forest vote margin",
            RuleId::B004 => "search degradation",
            RuleId::B010 => "fault-rate anomaly",
            RuleId::B011 => "cache anomaly",
            RuleId::B012 => "oracle evasion suspected",
            RuleId::B013 => "backbone-implanted backdoor suspected",
        }
    }

    /// Whether this rule is backdoor evidence (as opposed to an
    /// audit-integrity signal). Only backdoor evidence can flag or
    /// quarantine a model in strict mode, and only backdoor evidence
    /// escalates when it fires across repeated audits.
    pub fn is_backdoor_evidence(self) -> bool {
        matches!(
            self,
            RuleId::B001 | RuleId::B002 | RuleId::B003 | RuleId::B013
        )
    }

    /// Parses a wire code back to the ID.
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == code)
    }
}

/// Finding severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; no operator action expected.
    Advisory,
    Low,
    Medium,
    High,
    /// Immediate operator action expected.
    Critical,
}

impl Severity {
    /// Wire form (`"advisory"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Advisory => "advisory",
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        }
    }

    /// Parses the wire form.
    pub fn from_str_opt(s: &str) -> Option<Severity> {
        [
            Severity::Advisory,
            Severity::Low,
            Severity::Medium,
            Severity::High,
            Severity::Critical,
        ]
        .into_iter()
        .find(|v| v.as_str() == s)
    }

    /// One level more severe (saturating at [`Severity::Critical`]).
    pub fn escalated(self) -> Severity {
        match self {
            Severity::Advisory => Severity::Low,
            Severity::Low => Severity::Medium,
            Severity::Medium => Severity::High,
            Severity::High | Severity::Critical => Severity::Critical,
        }
    }
}

/// One rule that fired on one audit: the stable ID, how severe it was,
/// a human-readable reason, and the concrete evidence values backing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// How severe the match was.
    pub severity: Severity,
    /// Human-readable reason, self-contained (includes the threshold).
    pub reason: String,
    /// Concrete `(name, value)` evidence pairs the rule matched on.
    pub evidence: Vec<(String, f64)>,
}

/// The collect stage's output: everything one audit observed, distilled
/// to the values rules match on.
///
/// Deliberately excludes wall-clock (`*_ns`) fields: signals feed the
/// incident report, which must be byte-stable across reruns, thread
/// counts and machines.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Signals {
    /// Meta-classifier backdoor probability (fraction of forest votes).
    pub score: f32,
    /// Hard decision at threshold 0.5 (the raw verdict bit).
    pub backdoored: bool,
    /// Accuracy of the prompted model on the target training split.
    pub prompted_accuracy: f32,
    /// Total logical oracle queries the audit spent.
    pub queries: u64,
    /// Queries spent by the CMA-ES prompt search.
    pub prompt_queries: u64,
    /// Queries spent measuring the learned prompt's accuracy.
    pub accuracy_queries: u64,
    /// Queries spent extracting the probe feature.
    pub probe_queries: u64,
    /// Faults the oracle stack injected.
    pub faults_injected: u64,
    /// Retry attempts absorbed.
    pub retries: u64,
    /// Queries whose retry budget ran out.
    pub retry_exhausted: u64,
    /// Degraded (quantized/truncated/jittered) responses delivered.
    pub degraded_responses: u64,
    /// CMA-ES candidates skipped with an infinite penalty.
    pub penalized_candidates: u64,
    /// Query rows served from the content-addressed cache.
    pub cache_hits: u64,
    /// Deduplicated rows the cache forwarded to the provider.
    pub cache_misses: u64,
    /// Cache entries evicted by a bounded-memory policy.
    pub cache_evictions: u64,
    /// Responses the endpoint fabricated instead of answering honestly
    /// (adaptive-attacker evasion; see `bprom-faults::AdaptiveOracle`).
    pub evasive_responses: u64,
    /// Whether the audited system attests that its downstream
    /// prompt-tuning data was clean (the backbone scenario: a frozen
    /// pretrained backbone adapted with a visual prompt on clean data).
    /// Under that attestation, accuracy collapse implicates the backbone
    /// itself (`B013`) rather than the tuning data.
    pub clean_downstream_training: bool,
}

impl Signals {
    /// Forest vote margin in `[0, 1]`: how far the vote sits from the
    /// 50/50 decision boundary (`2 * |score - 0.5|`).
    pub fn vote_margin(&self) -> f32 {
        2.0 * (self.score - 0.5).abs()
    }

    /// Fraction of queries that drew an injected fault (0 when no
    /// queries were spent).
    pub fn fault_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.faults_injected as f64 / self.queries as f64
        }
    }
}

/// Thresholds the rules stage matches against. Severity policy is part
/// of the rule definitions; only the decision boundaries are tunable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RulePolicy {
    /// `B001` fires when `prompted_accuracy` falls strictly below this.
    pub accuracy_collapse: f32,
    /// `B002` fires when `score` exceeds this (strictly).
    pub suspicion_score: f32,
    /// `B003` fires when `score` exceeds `suspicion_score` *and* the
    /// vote margin reaches this floor.
    pub strong_vote_margin: f32,
    /// `B010` fires when the injected-fault rate exceeds this.
    pub max_fault_rate: f64,
}

impl Default for RulePolicy {
    fn default() -> Self {
        RulePolicy {
            accuracy_collapse: 0.30,
            suspicion_score: 0.5,
            strong_vote_margin: 0.2,
            max_fault_rate: 0.01,
        }
    }
}

impl RulePolicy {
    /// The rules stage: matches every registered rule against one
    /// audit's signals. Findings come back in rule-ID order — stable
    /// output for stable input, regardless of evaluation details.
    pub fn evaluate(&self, s: &Signals) -> Vec<Finding> {
        let mut findings = Vec::new();
        // Gated on the accuracy pass actually running: an audit that
        // never measured prompted accuracy reports 0.0 vacuously.
        if s.accuracy_queries > 0 && s.prompted_accuracy < self.accuracy_collapse {
            findings.push(Finding {
                rule: RuleId::B001,
                severity: if s.prompted_accuracy < self.accuracy_collapse / 2.0 {
                    Severity::High
                } else {
                    Severity::Medium
                },
                reason: format!(
                    "prompted accuracy {:.4} collapsed below the {:.4} floor",
                    s.prompted_accuracy, self.accuracy_collapse
                ),
                evidence: vec![
                    ("prompted_accuracy".into(), f64::from(s.prompted_accuracy)),
                    ("threshold".into(), f64::from(self.accuracy_collapse)),
                ],
            });
        }
        if s.score > self.suspicion_score {
            findings.push(Finding {
                rule: RuleId::B002,
                severity: if s.score >= 0.9 {
                    Severity::Critical
                } else {
                    Severity::High
                },
                reason: format!(
                    "meta-classifier subspace-inconsistency score {:.4} exceeds the {:.4} threshold",
                    s.score, self.suspicion_score
                ),
                evidence: vec![
                    ("score".into(), f64::from(s.score)),
                    ("threshold".into(), f64::from(self.suspicion_score)),
                ],
            });
        }
        if s.score > self.suspicion_score && s.vote_margin() >= self.strong_vote_margin {
            findings.push(Finding {
                rule: RuleId::B003,
                severity: Severity::Medium,
                reason: format!(
                    "forest vote margin {:.4} (score {:.4}) reaches the {:.4} strong-agreement floor",
                    s.vote_margin(),
                    s.score,
                    self.strong_vote_margin
                ),
                evidence: vec![
                    ("vote_margin".into(), f64::from(s.vote_margin())),
                    ("score".into(), f64::from(s.score)),
                    ("threshold".into(), f64::from(self.strong_vote_margin)),
                ],
            });
        }
        if s.penalized_candidates > 0 || s.retry_exhausted > 0 {
            findings.push(Finding {
                rule: RuleId::B004,
                severity: Severity::Low,
                reason: format!(
                    "prompt search degraded: {} CMA-ES candidates penalized, {} queries exhausted retries",
                    s.penalized_candidates, s.retry_exhausted
                ),
                evidence: vec![
                    (
                        "penalized_candidates".into(),
                        s.penalized_candidates as f64,
                    ),
                    ("retry_exhausted".into(), s.retry_exhausted as f64),
                ],
            });
        }
        if s.queries > 0 && s.fault_rate() > self.max_fault_rate {
            findings.push(Finding {
                rule: RuleId::B010,
                severity: Severity::Low,
                reason: format!(
                    "oracle injected faults on {:.4} of queries (ceiling {:.4})",
                    s.fault_rate(),
                    self.max_fault_rate
                ),
                evidence: vec![
                    ("fault_rate".into(), s.fault_rate()),
                    ("faults_injected".into(), s.faults_injected as f64),
                    ("threshold".into(), self.max_fault_rate),
                ],
            });
        }
        if s.cache_evictions > 0 {
            findings.push(Finding {
                rule: RuleId::B011,
                severity: Severity::Advisory,
                reason: format!(
                    "bounded query cache evicted {} entries; repeated audit content may re-spend provider queries",
                    s.cache_evictions
                ),
                evidence: vec![
                    ("cache_evictions".into(), s.cache_evictions as f64),
                    ("cache_hits".into(), s.cache_hits as f64),
                    ("cache_misses".into(), s.cache_misses as f64),
                ],
            });
        }
        if s.evasive_responses > 0 {
            findings.push(Finding {
                rule: RuleId::B012,
                // High, not backdoor evidence: the features this audit
                // computed were (partly) fabricated, so the verdict is
                // untrustworthy in *both* directions and the operator
                // should re-audit through a different query schedule.
                severity: Severity::High,
                reason: format!(
                    "endpoint answered {} batches evasively (probe-detection suspected); audit features are untrustworthy",
                    s.evasive_responses
                ),
                evidence: vec![
                    ("evasive_responses".into(), s.evasive_responses as f64),
                    ("queries".into(), s.queries as f64),
                ],
            });
        }
        // Same gating as B001: the accuracy pass must actually have run.
        if s.clean_downstream_training
            && s.accuracy_queries > 0
            && s.prompted_accuracy < self.accuracy_collapse
        {
            findings.push(Finding {
                rule: RuleId::B013,
                severity: Severity::High,
                reason: format!(
                    "prompted accuracy {:.4} collapsed below the {:.4} floor on a system \
                     whose downstream training data is attested clean; the frozen backbone \
                     is the suspected backdoor carrier",
                    s.prompted_accuracy, self.accuracy_collapse
                ),
                evidence: vec![
                    ("prompted_accuracy".into(), f64::from(s.prompted_accuracy)),
                    ("threshold".into(), f64::from(self.accuracy_collapse)),
                ],
            });
        }
        findings
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Value {
        let evidence: Vec<Value> = self
            .evidence
            .iter()
            .map(|(k, v)| Value::object(vec![("name", k.to_json()), ("value", v.to_json())]))
            .collect();
        Value::object(vec![
            ("rule", self.rule.code().to_string().to_json()),
            ("title", self.rule.title().to_string().to_json()),
            ("severity", self.severity.as_str().to_string().to_json()),
            ("reason", self.reason.to_json()),
            ("evidence", Value::Array(evidence)),
        ])
    }
}

impl FromJson for Finding {
    fn from_json(value: &Value) -> JsonResult<Self> {
        let code = String::from_json(value.require("rule")?)?;
        let rule = RuleId::from_code(&code)
            .ok_or_else(|| JsonError::new(format!("unknown rule id {code:?}")))?;
        let sev = String::from_json(value.require("severity")?)?;
        let severity = Severity::from_str_opt(&sev)
            .ok_or_else(|| JsonError::new(format!("unknown severity {sev:?}")))?;
        let mut evidence = Vec::new();
        for pair in value
            .require("evidence")?
            .as_array()
            .ok_or_else(|| JsonError::new("evidence must be an array"))?
        {
            evidence.push((
                String::from_json(pair.require("name")?)?,
                f64::from_json(pair.require("value")?)?,
            ));
        }
        Ok(Finding {
            rule,
            severity,
            reason: String::from_json(value.require("reason")?)?,
            evidence,
        })
    }
}

impl ToJson for Signals {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("score", self.score.to_json()),
            ("backdoored", self.backdoored.to_json()),
            ("prompted_accuracy", self.prompted_accuracy.to_json()),
            ("queries", self.queries.to_json()),
            ("prompt_queries", self.prompt_queries.to_json()),
            ("accuracy_queries", self.accuracy_queries.to_json()),
            ("probe_queries", self.probe_queries.to_json()),
            ("faults_injected", self.faults_injected.to_json()),
            ("retries", self.retries.to_json()),
            ("retry_exhausted", self.retry_exhausted.to_json()),
            ("degraded_responses", self.degraded_responses.to_json()),
            ("penalized_candidates", self.penalized_candidates.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("cache_evictions", self.cache_evictions.to_json()),
            ("evasive_responses", self.evasive_responses.to_json()),
            (
                "clean_downstream_training",
                self.clean_downstream_training.to_json(),
            ),
        ])
    }
}

impl FromJson for Signals {
    fn from_json(value: &Value) -> JsonResult<Self> {
        Ok(Signals {
            score: f32::from_json(value.require("score")?)?,
            backdoored: bool::from_json(value.require("backdoored")?)?,
            prompted_accuracy: f32::from_json(value.require("prompted_accuracy")?)?,
            queries: u64::from_json(value.require("queries")?)?,
            prompt_queries: u64::from_json(value.require("prompt_queries")?)?,
            accuracy_queries: u64::from_json(value.require("accuracy_queries")?)?,
            probe_queries: u64::from_json(value.require("probe_queries")?)?,
            faults_injected: u64::from_json(value.require("faults_injected")?)?,
            retries: u64::from_json(value.require("retries")?)?,
            retry_exhausted: u64::from_json(value.require("retry_exhausted")?)?,
            degraded_responses: u64::from_json(value.require("degraded_responses")?)?,
            penalized_candidates: u64::from_json(value.require("penalized_candidates")?)?,
            cache_hits: u64::from_json(value.require("cache_hits")?)?,
            cache_misses: u64::from_json(value.require("cache_misses")?)?,
            cache_evictions: u64::from_json(value.require("cache_evictions")?)?,
            evasive_responses: u64::from_json(value.require("evasive_responses")?)?,
            clean_downstream_training: bool::from_json(
                value.require("clean_downstream_training")?,
            )?,
        })
    }
}

impl ToJson for RulePolicy {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("accuracy_collapse", self.accuracy_collapse.to_json()),
            ("suspicion_score", self.suspicion_score.to_json()),
            ("strong_vote_margin", self.strong_vote_margin.to_json()),
            ("max_fault_rate", self.max_fault_rate.to_json()),
        ])
    }
}

impl FromJson for RulePolicy {
    fn from_json(value: &Value) -> JsonResult<Self> {
        Ok(RulePolicy {
            accuracy_collapse: f32::from_json(value.require("accuracy_collapse")?)?,
            suspicion_score: f32::from_json(value.require("suspicion_score")?)?,
            strong_vote_margin: f32::from_json(value.require("strong_vote_margin")?)?,
            max_fault_rate: f64::from_json(value.require("max_fault_rate")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_are_stable_and_parse_back() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::from_code(rule.code()), Some(rule));
            assert!(!rule.title().is_empty());
        }
        assert_eq!(RuleId::from_code("B999"), None);
    }

    #[test]
    fn severity_orders_and_escalates() {
        assert!(Severity::Advisory < Severity::Low);
        assert!(Severity::High < Severity::Critical);
        assert_eq!(Severity::Medium.escalated(), Severity::High);
        assert_eq!(Severity::Critical.escalated(), Severity::Critical);
        for s in ["advisory", "low", "medium", "high", "critical"] {
            assert_eq!(Severity::from_str_opt(s).unwrap().as_str(), s);
        }
    }

    #[test]
    fn clean_signals_raise_nothing() {
        let s = Signals {
            prompted_accuracy: 0.8,
            score: 0.2,
            queries: 500,
            accuracy_queries: 50,
            ..Signals::default()
        };
        assert!(RulePolicy::default().evaluate(&s).is_empty());
    }

    #[test]
    fn backdoor_evidence_rules_fire_with_expected_severities() {
        let s = Signals {
            score: 0.95,
            backdoored: true,
            prompted_accuracy: 0.05,
            queries: 100,
            accuracy_queries: 20,
            ..Signals::default()
        };
        let findings = RulePolicy::default().evaluate(&s);
        let codes: Vec<&str> = findings.iter().map(|f| f.rule.code()).collect();
        assert_eq!(codes, ["B001", "B002", "B003"]);
        assert_eq!(findings[0].severity, Severity::High); // deep collapse
        assert_eq!(findings[1].severity, Severity::Critical); // score >= 0.9
        assert!(findings.iter().all(|f| f.rule.is_backdoor_evidence()));
        // Reasons are self-contained and carry the threshold.
        assert!(findings[0].reason.contains("0.30"));
    }

    #[test]
    fn marginal_score_fires_b002_but_not_b003() {
        let s = Signals {
            score: 0.55,
            prompted_accuracy: 0.9,
            queries: 100,
            accuracy_queries: 20,
            ..Signals::default()
        };
        let findings = RulePolicy::default().evaluate(&s);
        let codes: Vec<&str> = findings.iter().map(|f| f.rule.code()).collect();
        assert_eq!(codes, ["B002"]);
        assert_eq!(findings[0].severity, Severity::High);
    }

    #[test]
    fn integrity_rules_fire_on_degraded_audits() {
        let s = Signals {
            prompted_accuracy: 0.9,
            queries: 1000,
            accuracy_queries: 100,
            faults_injected: 100,
            retry_exhausted: 2,
            penalized_candidates: 1,
            cache_evictions: 7,
            ..Signals::default()
        };
        let findings = RulePolicy::default().evaluate(&s);
        let codes: Vec<&str> = findings.iter().map(|f| f.rule.code()).collect();
        assert_eq!(codes, ["B004", "B010", "B011"]);
        assert!(findings.iter().all(|f| !f.rule.is_backdoor_evidence()));
    }

    #[test]
    fn evasion_fires_b012_without_flagging_a_backdoor() {
        let s = Signals {
            prompted_accuracy: 0.9,
            score: 0.2,
            queries: 1000,
            accuracy_queries: 100,
            evasive_responses: 3,
            ..Signals::default()
        };
        let findings = RulePolicy::default().evaluate(&s);
        let codes: Vec<&str> = findings.iter().map(|f| f.rule.code()).collect();
        assert_eq!(codes, ["B012"]);
        assert!(!findings[0].rule.is_backdoor_evidence());
        assert_eq!(findings[0].severity, Severity::High);
        assert!(findings[0].reason.contains("3 batches"));
    }

    #[test]
    fn backbone_collapse_fires_b013_only_under_clean_downstream_attestation() {
        // Collapse without the attestation: B001 family only, no B013.
        let s = Signals {
            score: 0.95,
            backdoored: true,
            prompted_accuracy: 0.05,
            queries: 100,
            accuracy_queries: 20,
            ..Signals::default()
        };
        let codes: Vec<&str> = RulePolicy::default()
            .evaluate(&s)
            .iter()
            .map(|f| f.rule.code())
            .collect();
        assert_eq!(codes, ["B001", "B002", "B003"]);

        // Same collapse with clean downstream training: B013 joins, last
        // in rule-ID order, as backdoor evidence at High severity.
        let attested = Signals {
            clean_downstream_training: true,
            ..s
        };
        let findings = RulePolicy::default().evaluate(&attested);
        let codes: Vec<&str> = findings.iter().map(|f| f.rule.code()).collect();
        assert_eq!(codes, ["B001", "B002", "B003", "B013"]);
        let b013 = findings.last().unwrap();
        assert!(b013.rule.is_backdoor_evidence());
        assert_eq!(b013.severity, Severity::High);
        assert!(b013.reason.contains("backbone"));

        // Healthy prompted accuracy under the attestation raises nothing.
        let healthy = Signals {
            prompted_accuracy: 0.8,
            score: 0.2,
            backdoored: false,
            clean_downstream_training: true,
            ..attested
        };
        assert!(RulePolicy::default().evaluate(&healthy).is_empty());

        // The attestation alone never fires when accuracy was not
        // measured (vacuous 0.0 accuracy).
        let unmeasured = Signals {
            accuracy_queries: 0,
            ..attested
        };
        assert!(RulePolicy::default()
            .evaluate(&unmeasured)
            .iter()
            .all(|f| f.rule != RuleId::B013));
    }

    #[test]
    fn finding_json_round_trip() {
        let s = Signals {
            score: 0.7,
            queries: 10,
            ..Signals::default()
        };
        let findings = RulePolicy::default().evaluate(&s);
        for f in &findings {
            let back = Finding::from_json(&f.to_json()).unwrap();
            assert_eq!(&back, f);
        }
        let back = Signals::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        let policy = RulePolicy::default();
        assert_eq!(RulePolicy::from_json(&policy.to_json()).unwrap(), policy);
    }
}
