//! The respond stage: turning correlated evidence into an operational
//! action under the active response mode.
//!
//! Learning mode is the safe rollout default for a new fleet: every
//! finding is recorded with full evidence, but no model is ever flagged
//! or quarantined, so a mis-calibrated policy cannot take a clean model
//! out of service. Strict mode is the enforcement posture: backdoor
//! evidence flags the model, and critical or persistent evidence
//! quarantines it. Both modes see identical findings — the mode changes
//! only the action, never the evidence (asserted by CI's learning-mode
//! leg).

use crate::correlate::ModelIncident;
use crate::rules::Severity;

/// Environment variable selecting the response mode (`learning` or
/// `strict`).
pub const MODE_ENV: &str = "BPROM_MODE";

/// Response posture for the respond stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Record findings only; never flag or quarantine.
    Learning,
    /// Flag on backdoor evidence; quarantine on critical or persistent
    /// evidence.
    #[default]
    Strict,
}

impl Mode {
    /// Wire form (`"learning"` / `"strict"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Learning => "learning",
            Mode::Strict => "strict",
        }
    }

    /// Parses the wire form.
    pub fn from_str_opt(s: &str) -> Option<Mode> {
        match s {
            "learning" => Some(Mode::Learning),
            "strict" => Some(Mode::Strict),
            _ => None,
        }
    }

    /// Reads [`MODE_ENV`], falling back to `default` when unset or
    /// unparseable (never panics: a bad env var cannot kill an audit).
    pub fn from_env_or(default: Mode) -> Mode {
        std::env::var(MODE_ENV)
            .ok()
            .and_then(|s| Mode::from_str_opt(s.trim()))
            .unwrap_or(default)
    }
}

/// The operational decision for one model incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// No findings at all — nothing to act on.
    None,
    /// Findings recorded; no enforcement (learning mode, or strict mode
    /// with only audit-integrity findings).
    Record,
    /// Backdoor evidence present — the model needs operator review.
    Flag,
    /// Critical or persistent backdoor evidence — take the model out of
    /// service pending review.
    Quarantine,
}

impl Action {
    /// Wire form (`"none"`, `"record"`, `"flag"`, `"quarantine"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Action::None => "none",
            Action::Record => "record",
            Action::Flag => "flag",
            Action::Quarantine => "quarantine",
        }
    }

    /// Parses the wire form.
    pub fn from_str_opt(s: &str) -> Option<Action> {
        [
            Action::None,
            Action::Record,
            Action::Flag,
            Action::Quarantine,
        ]
        .into_iter()
        .find(|a| a.as_str() == s)
    }
}

/// The respond stage: assigns each incident its [`Action`] in place.
///
/// Decision table (per incident):
///
/// | evidence | learning | strict |
/// |---|---|---|
/// | no findings | `None` | `None` |
/// | integrity findings only | `Record` | `Record` |
/// | backdoor evidence | `Record` | `Flag` |
/// | backdoor evidence, critical or escalated | `Record` | `Quarantine` |
pub fn respond(incidents: &mut [ModelIncident], mode: Mode) {
    for incident in incidents {
        incident.action = decide(incident, mode);
    }
}

fn decide(incident: &ModelIncident, mode: Mode) -> Action {
    if incident.findings.is_empty() {
        return Action::None;
    }
    if mode == Mode::Learning || !incident.has_backdoor_evidence() {
        return Action::Record;
    }
    let quarantine = incident.findings.iter().any(|f| {
        f.finding.rule.is_backdoor_evidence()
            && (f.finding.severity >= Severity::Critical || f.escalated)
    });
    if quarantine {
        Action::Quarantine
    } else {
        Action::Flag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::correlate;
    use crate::correlate::AuditRecord;
    use crate::rules::{RulePolicy, Signals};

    fn incident_for(records: &[AuditRecord], mode: Mode) -> ModelIncident {
        let mut incidents = correlate(records);
        respond(&mut incidents, mode);
        incidents.remove(0)
    }

    fn audit(score: f32, prompted_accuracy: f32, evictions: u64) -> AuditRecord {
        let signals = Signals {
            score,
            backdoored: score > 0.5,
            prompted_accuracy,
            queries: 100,
            accuracy_queries: 20,
            cache_evictions: evictions,
            ..Signals::default()
        };
        AuditRecord {
            model: "m".into(),
            regime: "full".into(),
            scenario: "downstream".into(),
            findings: RulePolicy::default().evaluate(&signals),
            signals,
        }
    }

    #[test]
    fn clean_incident_is_none_in_both_modes() {
        for mode in [Mode::Learning, Mode::Strict] {
            assert_eq!(
                incident_for(&[audit(0.2, 0.9, 0)], mode).action,
                Action::None
            );
        }
    }

    #[test]
    fn integrity_only_records_even_in_strict() {
        let incident = incident_for(&[audit(0.2, 0.9, 5)], Mode::Strict);
        assert!(!incident.has_backdoor_evidence());
        assert_eq!(incident.action, Action::Record);
    }

    #[test]
    fn strict_flags_moderate_evidence_and_quarantines_critical() {
        // score 0.6 → B002 High, no Critical, single audit → Flag.
        let flagged = incident_for(&[audit(0.6, 0.9, 0)], Mode::Strict);
        assert_eq!(flagged.action, Action::Flag);
        // score 0.95 → B002 Critical → Quarantine.
        let critical = incident_for(&[audit(0.95, 0.9, 0)], Mode::Strict);
        assert_eq!(critical.action, Action::Quarantine);
        // Persistent moderate evidence escalates to quarantine too.
        let persistent = incident_for(&[audit(0.6, 0.9, 0), audit(0.6, 0.9, 0)], Mode::Strict);
        assert!(persistent.findings[0].escalated);
        assert_eq!(persistent.action, Action::Quarantine);
    }

    #[test]
    fn learning_mode_never_enforces() {
        for records in [
            vec![audit(0.95, 0.05, 3)],
            vec![audit(0.6, 0.9, 0), audit(0.6, 0.9, 0)],
        ] {
            let incident = incident_for(&records, Mode::Learning);
            assert_eq!(incident.action, Action::Record);
            assert!(incident.has_backdoor_evidence());
        }
    }

    #[test]
    fn mode_env_parsing_is_forgiving() {
        assert_eq!(Mode::from_str_opt("learning"), Some(Mode::Learning));
        assert_eq!(Mode::from_str_opt("strict"), Some(Mode::Strict));
        assert_eq!(Mode::from_str_opt("SHOUTING"), None);
        assert_eq!(Mode::default(), Mode::Strict);
        for a in [
            Action::None,
            Action::Record,
            Action::Flag,
            Action::Quarantine,
        ] {
            assert_eq!(Action::from_str_opt(a.as_str()), Some(a));
        }
    }
}
