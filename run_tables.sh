#!/bin/bash
# Runs every table/figure harness at full substrate scale, teeing to
# results/. Prioritized so the headline results land first.
set -u
BINS="table05_main_auroc fig03_subspace_inconsistency table07_shadow_count table11_low_poison_rate table12_clean_label table22_feature_backdoors fig05_pca bench_training_time table14_15_acc_asr table23_ds_size table02_target_classes table03_trigger_size_acc table04_poison_rate_acc table01_input_level_drop table10_cross_arch table16_f1_resnet table17_18_mobilenet table19_20_svhn table21_cifar100 table24_25_transformers table08_09_strength_auroc table06_26_large_datasets ablation_meta table05_baselines ablation_label_map limitation_all_to_all table13_attack_configs"
mkdir -p results
for b in $BINS; do
  echo "=== RUNNING $b ==="
  timeout 1500 ./target/release/$b > results/$b.txt 2>&1
  echo "=== DONE $b (exit $?) ==="
done
echo ALL_TABLES_DONE
