#!/usr/bin/env python3
"""Appends (or refreshes) the raw harness outputs in results/ as an
appendix section of EXPERIMENTS.md."""
import glob, os

MARK = "\n---\n\n## Appendix — raw harness outputs\n"
src = open("EXPERIMENTS.md").read()
if MARK in src:
    src = src.split(MARK)[0]
parts = [src, MARK]
for path in sorted(glob.glob("results/*.txt")):
    body = open(path).read().strip()
    if not body:
        continue
    parts.append(f"\n### `{os.path.basename(path)}`\n\n```text\n{body}\n```\n")
open("EXPERIMENTS.md", "w").write("".join(parts))
print("appendix refreshed with", len(parts) - 2, "result files")
