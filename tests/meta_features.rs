//! The meta-feature extractor must be invariant to class permutations —
//! the property that lets one random forest recognize backdoors whose
//! target class differs per model (DESIGN.md §6.2).

use bprom_suite::bprom::meta_model::feature_from_confidences;
use bprom_suite::tensor::{Rng, Tensor};

#[test]
fn canonical_prefix_is_class_permutation_invariant() {
    let mut rng = Rng::new(0);
    let (q, k) = (6usize, 5usize);
    // Random probe confidences.
    let probs = Tensor::rand_uniform(&[q, k], 0.0, 1.0, &mut rng);
    let labels = vec![0usize; q];
    let base = feature_from_confidences(&probs, &labels).unwrap();
    // Permute the class axis.
    let perm = [3usize, 0, 4, 1, 2];
    let mut permuted = Tensor::zeros(&[q, k]);
    for row in 0..q {
        for (c, &src) in perm.iter().enumerate() {
            permuted.data_mut()[row * k + c] = probs.data()[row * k + src];
        }
    }
    let feat = feature_from_confidences(&permuted, &labels).unwrap();
    // The canonicalized confidence block and aggregate block are identical
    // (up to float-summation order in the entropy term); only the accuracy
    // feature (which depends on true class identity) may differ.
    let prefix = q * k + k + 1; // per-probe canonical + rank means + entropy
    for (i, (a, b)) in base[..prefix].iter().zip(&feat[..prefix]).enumerate() {
        assert!((a - b).abs() < 1e-5, "feature {i}: {a} vs {b}");
    }
}

#[test]
fn accuracy_feature_is_last_and_correct() {
    // Two probes over 3 classes: first predicted class 2, second class 0.
    let probs = Tensor::from_vec(vec![0.1, 0.2, 0.7, 0.8, 0.1, 0.1], &[2, 3]).unwrap();
    let feat = feature_from_confidences(&probs, &[2, 1]).unwrap();
    // Probe 0 correct (label 2), probe 1 wrong (label 1) → accuracy 0.5.
    assert_eq!(*feat.last().unwrap(), 0.5);
    // Length: q*k per-probe + k rank means + entropy + accuracy.
    assert_eq!(feat.len(), 2 * 3 + 3 + 2);
}

#[test]
fn rank0_column_is_the_dominant_class() {
    // Class 1 dominates everywhere: after canonicalization it must occupy
    // rank 0 (the first column of every probe row).
    let probs =
        Tensor::from_vec(vec![0.1, 0.8, 0.1, 0.2, 0.7, 0.1, 0.15, 0.75, 0.1], &[3, 3]).unwrap();
    let feat = feature_from_confidences(&probs, &[0, 0, 0]).unwrap();
    assert_eq!(feat[0], 0.8);
    assert_eq!(feat[3], 0.7);
    assert_eq!(feat[6], 0.75);
}

#[test]
fn label_count_mismatch_rejected() {
    let probs = Tensor::zeros(&[2, 3]);
    assert!(feature_from_confidences(&probs, &[0]).is_err());
}
