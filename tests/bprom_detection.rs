//! End-to-end BPROM detection: fit the detector with BadNets shadows, then
//! detect BadNets-backdoored suspicious models (the paper's core claim) at
//! reduced scale. Table-scale runs live in the bench harness.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{build_suspicious_zoo, evaluate_detector, Bprom, BpromConfig, ZooConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::tensor::Rng;

#[test]
fn bprom_detects_badnets_backdoors() {
    let mut rng = Rng::new(7);
    let mut config = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
    // Reduced scale to keep the test under a couple of minutes.
    config.clean_shadows = 6;
    config.backdoor_shadows = 6;
    config.prompt.cmaes_generations = 25;
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 4;
    zoo_cfg.backdoored = 4;
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    let report = evaluate_detector(&detector, zoo, &mut rng).unwrap();
    assert!(
        report.auroc >= 0.75,
        "detection AUROC {} too low (scores {:?}, labels {:?})",
        report.auroc,
        report.scores,
        report.labels
    );
    assert!(report.mean_queries > 0.0);
}
