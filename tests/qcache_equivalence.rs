//! Equivalence contract of the query cache (`bprom-qcache`): caching is
//! *response-transparent*. Every confidence vector an oracle serves — and
//! therefore every verdict and detection report downstream — must be
//! bit-identical with the cache off, unbounded, or LRU-bounded, at any
//! thread count, hostile oracle stacks included. The cache may only
//! change *provider-side* spend, and must account for it exactly:
//! `cache_hits + cache_misses` equals the uncached query total.
//!
//! Tier 1 covers the oracle boundary directly (a 50-seed sweep over
//! random batch shapes with duplicated rows, a hostile-stack sweep, and
//! a row-order property check) plus one small end-to-end smoke at the
//! default thread count. The full pipeline matrix — cache mode × thread
//! count × fault profile — is `#[ignore]`d and run by the tier-2 CI job
//! (`cargo test -q --workspace -- --ignored`).

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{
    build_suspicious_zoo, evaluate_detector, evaluate_detector_via, Bprom, BpromConfig,
    CacheConfig, DetectionReport, OracleRegime, Verdict, ZooConfig,
};
use bprom_suite::data::SynthDataset;
use bprom_suite::faults::{
    AdaptiveConfig, AdaptiveOracle, FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack,
    Transient,
};
use bprom_suite::nn::models::{mlp, ModelSpec};
use bprom_suite::nn::TrainConfig;
use bprom_suite::par;
use bprom_suite::qcache::CachingOracle;
use bprom_suite::scenarios::{
    build_backbone_zoo, evaluate_backbone_zoo, evaluate_backbone_zoo_via, BackboneScenarioConfig,
};
use bprom_suite::tensor::{Rng, Tensor};
use bprom_suite::vp::{BlackBoxModel, PromptStyle, PromptTrainConfig, QueryOracle};
use std::sync::Mutex;

/// Serializes the tier-2 matrix with any other test that flips the
/// process-global worker-pool size.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

const ROW: usize = 3 * 8 * 8;

/// A fresh oracle over the model deterministically derived from `seed`;
/// two calls with the same seed wrap bit-identical models.
fn oracle_for(seed: u64, k: usize) -> QueryOracle {
    let model = mlp(&ModelSpec::new(3, 8, k), &mut Rng::new(seed)).unwrap();
    QueryOracle::new(model, k)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|p| p.to_bits()).collect()
}

/// A `[n, 3, 8, 8]` batch whose rows are drawn (with repetition) from a
/// pool of distinct images, so dedup and hits both trigger.
fn batch_from_pool(pool: &Tensor, picks: &[usize]) -> Tensor {
    let mut data = Vec::with_capacity(picks.len() * ROW);
    for &i in picks {
        data.extend_from_slice(&pool.data()[i * ROW..(i + 1) * ROW]);
    }
    Tensor::from_vec(data, &[picks.len(), 3, 8, 8]).unwrap()
}

fn modes() -> [CacheConfig; 3] {
    [
        CacheConfig::off(),
        CacheConfig::unbounded(),
        CacheConfig::lru(5),
    ]
}

/// 50 seeds × {off, mem, lru} over random batch shapes with duplicated
/// rows: every response bit-identical to the uncached oracle, logical
/// spend identical, and `hits + misses` equal to the uncached total.
#[test]
fn fifty_seeds_off_mem_lru_are_bit_identical() {
    for seed in 0..50u64 {
        let k = 3 + (seed as usize % 6);
        let reference = oracle_for(seed, k);
        let cached: Vec<CachingOracle<QueryOracle>> = modes()
            .iter()
            .map(|&mode| CachingOracle::new(oracle_for(seed, k), mode))
            .collect();

        let mut rng = Rng::new(0x5EED ^ seed);
        let pool = Tensor::rand_uniform(&[6, 3, 8, 8], 0.0, 1.0, &mut rng);
        for _ in 0..5 {
            let n = 1 + rng.below(8);
            let picks: Vec<usize> = (0..n).map(|_| rng.below(6)).collect();
            let b = batch_from_pool(&pool, &picks);
            let want = bits(&reference.query(&b).unwrap());
            for c in &cached {
                assert_eq!(bits(&c.query(&b).unwrap()), want, "seed {seed}");
            }
        }

        let spent = reference.queries_used();
        for (c, mode) in cached.iter().zip(modes()) {
            // Logical spend is mode-invariant; provider spend is not.
            assert_eq!(c.queries_used(), spent, "seed {seed} {mode:?}");
            let stats = c.oracle_stats();
            if mode == CacheConfig::off() {
                assert_eq!(stats.cache_hits + stats.cache_misses, 0);
                assert_eq!(c.inner().queries_used(), spent);
            } else {
                assert_eq!(
                    stats.cache_hits + stats.cache_misses,
                    spent,
                    "seed {seed} {mode:?}: cache accounting must cover every row"
                );
                assert_eq!(c.inner().queries_used() + stats.cache_hits, spent);
            }
        }
    }
}

/// The same sweep behind a hostile stack (retry → faults → cache):
/// responses and fault statistics are bit-identical to the cache-free
/// stack under every cache mode.
#[test]
fn hostile_stack_is_mode_invariant() {
    for seed in 0..10u64 {
        let k = 4 + (seed as usize % 3);
        let mut rng = Rng::new(0xFA ^ seed);
        let pool = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let batches: Vec<Tensor> = (0..4)
            .map(|_| {
                let n = 1 + rng.below(6);
                let picks: Vec<usize> = (0..n).map(|_| rng.below(4)).collect();
                batch_from_pool(&pool, &picks)
            })
            .collect();

        // Reference: the hostile stack over the bare oracle.
        let bare = oracle_for(seed, k);
        let faulty = FaultyOracle::new(&bare, Transient { rate: 0.2 }, 0xFA17 ^ seed);
        let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
        let want: Vec<Vec<u32>> = batches
            .iter()
            .map(|b| bits(&retrying.query(b).unwrap()))
            .collect();
        let want_stats = retrying.oracle_stats();

        for mode in [CacheConfig::unbounded(), CacheConfig::lru(3)] {
            let cached = CachingOracle::new(oracle_for(seed, k), mode);
            let faulty = FaultyOracle::new(&cached, Transient { rate: 0.2 }, 0xFA17 ^ seed);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            for (b, want) in batches.iter().zip(&want) {
                assert_eq!(&bits(&retrying.query(b).unwrap()), want, "seed {seed}");
            }
            let stats = retrying.oracle_stats();
            // Fault draws are content-keyed, so the hostile layer behaves
            // identically whether or not a cache sits below it.
            assert_eq!(stats.faults_injected, want_stats.faults_injected);
            assert_eq!(stats.retries, want_stats.retries);
            assert_eq!(stats.retry_exhausted, want_stats.retry_exhausted);
        }
    }
}

/// Property sweep over random batch shapes: dedup must never reorder
/// rows. Every output row equals the reference response for exactly the
/// image occupying that row, even when the batch repeats rows in
/// arbitrary patterns and a tiny LRU is evicting throughout.
#[test]
fn dedup_never_reorders_rows_across_random_shapes() {
    for seed in 0..20u64 {
        let k = 5;
        let reference = oracle_for(seed, k);
        let mut rng = Rng::new(0xDE0 ^ seed);
        let pool_n = 1 + rng.below(5);
        let pool = Tensor::rand_uniform(&[pool_n, 3, 8, 8], 0.0, 1.0, &mut rng);
        // Per-pool-row reference responses, from single-row batches.
        let row_want: Vec<Vec<u32>> = (0..pool_n)
            .map(|i| bits(&reference.query(&batch_from_pool(&pool, &[i])).unwrap()))
            .collect();

        for mode in [CacheConfig::unbounded(), CacheConfig::lru(2)] {
            let cached = CachingOracle::new(oracle_for(seed, k), mode);
            for _ in 0..6 {
                let n = 1 + rng.below(10);
                let picks: Vec<usize> = (0..n).map(|_| rng.below(pool_n)).collect();
                let got = cached.query(&batch_from_pool(&pool, &picks)).unwrap();
                for (slot, &i) in picks.iter().enumerate() {
                    assert_eq!(
                        got.data()[slot * k..(slot + 1) * k]
                            .iter()
                            .map(|p| p.to_bits())
                            .collect::<Vec<u32>>(),
                        row_want[i],
                        "seed {seed} {mode:?}: row {slot} must hold image {i}'s response"
                    );
                }
            }
        }
    }
}

fn tiny_config() -> BpromConfig {
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    config
}

/// Everything in a verdict that must be cache-mode-invariant: score,
/// decision, prompted accuracy, and the full logical budget (wall-clock
/// and the cache's own tallies excluded).
fn fingerprint(v: &Verdict) -> Vec<u64> {
    vec![
        u64::from(v.score.to_bits()),
        u64::from(v.backdoored),
        u64::from(v.prompted_accuracy.to_bits()),
        v.queries,
        v.budget.prompt_queries,
        v.budget.accuracy_queries,
        v.budget.probe_queries,
        v.budget.faults_injected,
        v.budget.retries,
        v.budget.retry_exhausted,
        v.budget.degraded_responses,
        v.budget.backoff_virtual_ms,
        v.budget.penalized_candidates,
    ]
}

/// End-to-end smoke at the default thread count: one fitted detector
/// inspects the same suspicious model under every cache mode, plain and
/// behind the hostile stack. Verdicts are bit-identical; the cache's own
/// accounting covers the uncached spend exactly.
#[test]
fn pipeline_verdicts_are_mode_invariant() {
    let mut rng = Rng::new(42);
    let config = tiny_config();
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 0;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 20;
    zoo_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    let num_classes = config.source_dataset.num_classes();
    let mut model = zoo.into_iter().next().unwrap().model;

    let mut plain: Vec<Verdict> = Vec::new();
    let mut hostile: Vec<Verdict> = Vec::new();
    for mode in [
        CacheConfig::off(),
        CacheConfig::unbounded(),
        CacheConfig::lru(4096),
    ] {
        // Plain leg: the cache is the outermost (and only) decorator.
        let cached = CachingOracle::new(QueryOracle::new(model, num_classes), mode);
        plain.push(detector.inspect(&cached, &mut Rng::new(7)).unwrap());
        model = cached.into_inner().into_inner();

        // Hostile leg: retry → faults stacked above a fresh cache.
        let cached = CachingOracle::new(QueryOracle::new(model, num_classes), mode);
        let verdict = {
            let plan = Stack(vec![
                Box::new(Transient { rate: 0.1 }),
                Box::new(Quantize { decimals: 3 }),
            ]);
            let faulty = FaultyOracle::new(&cached, plan, 0xFA17);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            detector.inspect(&retrying, &mut Rng::new(7)).unwrap()
        };
        hostile.push(verdict);
        model = cached.into_inner().into_inner();
    }

    for v in &plain[1..] {
        assert_eq!(
            fingerprint(v),
            fingerprint(&plain[0]),
            "cache mode leaked into a plain verdict"
        );
    }
    for v in &hostile[1..] {
        assert_eq!(
            fingerprint(v),
            fingerprint(&hostile[0]),
            "cache mode leaked into a hostile verdict"
        );
    }
    assert!(hostile[0].budget.faults_injected > 0);

    // Exact accounting: every logical row of the off-mode run shows up as
    // a hit or a miss in the memoized runs, and the accuracy pass replays
    // enough of the CMA-ES traffic to guarantee hits.
    let off_queries = plain[0].queries;
    for v in &plain[1..] {
        assert_eq!(v.budget.cache_hits + v.budget.cache_misses, off_queries);
        assert!(v.budget.cache_hits > 0, "accuracy pass must hit the cache");
    }
    assert_eq!(plain[0].budget.cache_hits, 0);
    assert_eq!(plain[0].budget.cache_misses, 0);
}

/// One identically-seeded fit + zoo + evaluate run under the given cache
/// policy and the currently installed thread count.
fn run_pipeline(hostile: bool, cache: CacheConfig) -> DetectionReport {
    run_regime_pipeline(
        OracleRegime::from_env_or(OracleRegime::FullScores),
        false,
        hostile,
        cache,
    )
}

/// `run_pipeline` with the oracle regime pinned explicitly and an
/// optional adaptive-attacker decoration on every inspected oracle.
fn run_regime_pipeline(
    regime: OracleRegime,
    adaptive: bool,
    hostile: bool,
    cache: CacheConfig,
) -> DetectionReport {
    let mut rng = Rng::new(42);
    let mut config = tiny_config();
    config.regime = regime;
    config.cache = cache;
    if adaptive {
        // Pad-style prompting carries the bit-identical-border signature
        // the adaptive attacker's similarity test keys on (overlay-style
        // prompts are per-row unique and evade a per-batch test).
        config.prompt_style = PromptStyle::Pad;
    }
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 20;
    zoo_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    let mut report = if adaptive {
        // Adaptive attacker above the detector's own cache: evasion
        // decisions are pure functions of batch content, so they cannot
        // observe (or leak) the cache mode.
        evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
            let adaptive = AdaptiveOracle::new(&oracle, AdaptiveConfig::default(), 0xADA9);
            detector.inspect(&adaptive, rng)
        })
        .unwrap()
    } else if hostile {
        evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
            let plan = Stack(vec![
                Box::new(Transient { rate: 0.1 }),
                Box::new(Quantize { decimals: 3 }),
            ]);
            let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            detector.inspect(&retrying, rng)
        })
        .unwrap()
    } else {
        evaluate_detector(&detector, zoo, &mut rng).unwrap()
    };
    report.mean_inspect_ms = 0.0;
    report
}

/// JSON with the legitimately mode-dependent fields zeroed: wall-clock
/// and the cache's own hit/miss/eviction tallies, both the report totals
/// and the per-audit copies inside `audits[].signals`. Everything else —
/// scores, prompted accuracies, AUROC/F1, the logical query budget, the
/// fault and evasion totals — must be byte-identical across the matrix.
fn scrubbed_json(report: &DetectionReport) -> String {
    let mut r = report.clone();
    r.total_cache_hits = 0;
    r.total_cache_misses = 0;
    r.total_cache_evictions = 0;
    for audit in &mut r.audits {
        audit.signals.cache_hits = 0;
        audit.signals.cache_misses = 0;
        audit.signals.cache_evictions = 0;
    }
    r.to_json().unwrap()
}

/// Tier-1 regime leg: under top-k truncation and label-only responses
/// the cache must stay response-transparent — the detector-side regime
/// degrade sits *above* the cache (the cache memoizes full scores), so
/// scrubbed reports are byte-identical with the cache off or unbounded,
/// and the memoized leg's accounting still covers the uncached spend
/// exactly.
#[test]
fn regime_reports_are_cache_mode_invariant() {
    let _guard = THREAD_KNOB.lock().unwrap();
    for regime in [OracleRegime::TopK(3), OracleRegime::LabelOnly] {
        let off = run_regime_pipeline(regime, false, false, CacheConfig::off());
        let mem = run_regime_pipeline(regime, false, false, CacheConfig::unbounded());
        assert_eq!(
            scrubbed_json(&mem),
            scrubbed_json(&off),
            "{regime}: cache mode leaked into the detection report"
        );
        assert!(off.total_queries > 0);
        assert_eq!(off.total_cache_hits + off.total_cache_misses, 0);
        assert_eq!(
            mem.total_cache_hits + mem.total_cache_misses,
            off.total_queries,
            "{regime}: cache accounting must cover the uncached spend exactly"
        );
        assert!(mem.total_cache_hits > 0, "{regime}: accuracy pass must hit");
        for audit in &mem.audits {
            assert_eq!(audit.regime, regime.as_wire());
        }
    }
}

/// Tier-2 regime matrix: degraded regimes and the adaptive-attacker tier
/// across thread count × cache mode, every report byte-identical after
/// the scrub. The adaptive oracle sits above the cache, sees every
/// logical query, and keys every decision on batch content, so neither
/// knob can perturb its evasions.
#[test]
#[ignore = "tier-2 regime matrix (16 full runs); CI regimes job runs it via -- --ignored"]
fn regime_matrix_reports_are_byte_identical() {
    let _guard = THREAD_KNOB.lock().unwrap();
    for (regime, adaptive) in [
        (OracleRegime::TopK(3), false),
        (OracleRegime::LabelOnly, false),
        (OracleRegime::FullScores, true),
        (OracleRegime::LabelOnly, true),
    ] {
        let mut runs: Vec<(usize, CacheConfig, DetectionReport)> = Vec::new();
        for threads in [1usize, 4] {
            par::set_thread_count(threads);
            for mode in [CacheConfig::off(), CacheConfig::unbounded()] {
                runs.push((
                    threads,
                    mode,
                    run_regime_pipeline(regime, adaptive, false, mode),
                ));
            }
        }
        par::set_thread_count(0);

        let baseline = scrubbed_json(&runs[0].2);
        for (threads, mode, report) in &runs[1..] {
            assert_eq!(
                scrubbed_json(report),
                baseline,
                "{regime} adaptive={adaptive} threads={threads} {mode:?}: report \
                 drifted from the threads=1 cache-off baseline"
            );
        }
        if adaptive {
            let evasions: u64 = runs[0]
                .2
                .audits
                .iter()
                .map(|a| a.signals.evasive_responses)
                .sum();
            assert!(evasions > 0, "{regime}: adaptive tier must trip evasions");
        }
    }
}

/// One identically-seeded backbone-scenario run under the given cache
/// policy: the detector's cache sits between its probes and the sealed
/// `PromptedBackbone` composite, so cache transparency must hold through
/// the prompt-composition and label-translation layers too.
fn run_backbone_pipeline(hostile: bool, cache: CacheConfig) -> DetectionReport {
    let mut rng = Rng::new(42);
    let mut config = tiny_config();
    config.regime = OracleRegime::from_env_or(OracleRegime::FullScores);
    config.cache = cache;
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = BackboneScenarioConfig::new(
        SynthDataset::Cifar10,
        SynthDataset::Stl10,
        AttackKind::BadNets,
    );
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 30;
    zoo_cfg.downstream_samples_per_class = 10;
    zoo_cfg.prompt = PromptTrainConfig {
        epochs: 2,
        ..PromptTrainConfig::default()
    };
    let zoo = build_backbone_zoo(&zoo_cfg, &mut rng).unwrap();
    let mut report = if hostile {
        evaluate_backbone_zoo_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
            let plan = Stack(vec![
                Box::new(Transient { rate: 0.1 }),
                Box::new(Quantize { decimals: 3 }),
            ]);
            let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            detector.inspect(&retrying, rng)
        })
        .unwrap()
    } else {
        evaluate_backbone_zoo(&detector, zoo, &mut rng).unwrap()
    };
    report.mean_inspect_ms = 0.0;
    report
}

/// Tier-1 backbone leg: the cache is response-transparent through a
/// composite oracle — scrubbed reports byte-identical with the cache off
/// or unbounded, exact accounting on the memoized leg, and the scenario
/// stamp untouched by either mode.
#[test]
fn backbone_reports_are_cache_mode_invariant() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let off = run_backbone_pipeline(false, CacheConfig::off());
    let mem = run_backbone_pipeline(false, CacheConfig::unbounded());
    assert_eq!(
        scrubbed_json(&mem),
        scrubbed_json(&off),
        "cache mode leaked into the backbone-scenario detection report"
    );
    assert_eq!(off.scenario, "backbone");
    assert!(off.total_queries > 0);
    assert_eq!(off.total_cache_hits + off.total_cache_misses, 0);
    assert_eq!(
        mem.total_cache_hits + mem.total_cache_misses,
        off.total_queries,
        "cache accounting must cover the uncached composite spend exactly"
    );
    assert!(mem.total_cache_hits > 0, "accuracy pass must hit the cache");
    for audit in &mem.audits {
        assert!(audit.signals.clean_downstream_training);
    }
}

/// Tier-2 backbone matrix: thread count × cache mode × fault profile
/// over the backbone scenario, every report byte-identical to the
/// threads=1 cache-off baseline of its hostility tier after the scrub.
#[test]
#[ignore = "tier-2 backbone matrix (8 full runs); CI backbone job runs it via -- --ignored"]
fn backbone_matrix_reports_are_byte_identical() {
    let _guard = THREAD_KNOB.lock().unwrap();
    for hostile in [false, true] {
        let mut runs: Vec<(usize, CacheConfig, DetectionReport)> = Vec::new();
        for threads in [1usize, 4] {
            par::set_thread_count(threads);
            for mode in [CacheConfig::off(), CacheConfig::unbounded()] {
                runs.push((threads, mode, run_backbone_pipeline(hostile, mode)));
            }
        }
        par::set_thread_count(0);

        let baseline = scrubbed_json(&runs[0].2);
        for (threads, mode, report) in &runs[1..] {
            assert_eq!(
                scrubbed_json(report),
                baseline,
                "backbone hostile={hostile} threads={threads} {mode:?}: report \
                 drifted from the threads=1 cache-off baseline"
            );
        }
        if hostile {
            assert!(runs[0].2.total_faults > 0);
        }
        for (_, mode, report) in &runs {
            if *mode == CacheConfig::off() {
                assert_eq!(report.total_cache_hits + report.total_cache_misses, 0);
            } else {
                assert_eq!(
                    report.total_cache_hits + report.total_cache_misses,
                    runs[0].2.total_queries,
                    "backbone hostile={hostile} {mode:?}: cache accounting must \
                     cover the uncached spend exactly"
                );
            }
        }
    }
}

/// Tier-2: the full cache mode × thread count × fault profile matrix of
/// end-to-end pipeline runs, every report byte-identical after the scrub
/// and the cache accounting exact on every memoized leg.
#[test]
#[ignore = "tier-2 pipeline matrix (12 full runs); CI runs it via -- --ignored"]
fn full_matrix_reports_are_byte_identical() {
    let _guard = THREAD_KNOB.lock().unwrap();
    for hostile in [false, true] {
        let mut runs: Vec<(usize, CacheConfig, DetectionReport)> = Vec::new();
        for threads in [1usize, 4] {
            par::set_thread_count(threads);
            for mode in [
                CacheConfig::off(),
                CacheConfig::unbounded(),
                CacheConfig::lru(4096),
            ] {
                runs.push((threads, mode, run_pipeline(hostile, mode)));
            }
        }
        par::set_thread_count(0);

        let baseline = scrubbed_json(&runs[0].2);
        for (threads, mode, report) in &runs[1..] {
            assert_eq!(
                scrubbed_json(report),
                baseline,
                "hostile={hostile} threads={threads} {mode:?}: report drifted from \
                 the threads=1 cache-off baseline"
            );
        }

        let off = &runs[0].2;
        assert!(off.total_queries > 0);
        if hostile {
            assert!(off.total_faults > 0);
            assert!(off.total_retries > 0);
        }
        for (_, mode, report) in &runs {
            if *mode == CacheConfig::off() {
                assert_eq!(report.total_cache_hits + report.total_cache_misses, 0);
            } else {
                assert_eq!(
                    report.total_cache_hits + report.total_cache_misses,
                    off.total_queries,
                    "hostile={hostile} {mode:?}: cache accounting must cover the \
                     uncached spend exactly"
                );
                assert!(report.total_cache_hits > 0);
            }
        }
    }
}
