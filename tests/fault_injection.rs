//! Property-style sweep over the fault-injection layer (`bprom-faults`):
//! seeded fault plans must be exactly reproducible, hit their configured
//! rate in aggregate, and compose with the query-accounting decorators
//! without losing a single attempt.

use bprom_suite::faults::{FaultyOracle, RetryPolicy, RetryingOracle, Transient};
use bprom_suite::nn::models::{mlp, ModelSpec};
use bprom_suite::tensor::{Rng, Tensor};
use bprom_suite::vp::{BlackBoxModel, CountingOracle, QueryOracle};

fn oracle() -> QueryOracle {
    let mut rng = Rng::new(0);
    let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
    QueryOracle::new(model, 5)
}

/// Distinct single-image batches, deterministic across runs.
fn batches(count: usize) -> Vec<Tensor> {
    let mut rng = Rng::new(999);
    (0..count)
        .map(|_| Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng))
        .collect()
}

/// The per-query fault fates (true = dropped) of one fresh plan run.
fn fault_pattern(inner: &QueryOracle, batches: &[Tensor], rate: f32, seed: u64) -> Vec<bool> {
    let faulty = FaultyOracle::new(inner, Transient { rate }, seed);
    batches
        .iter()
        .map(|b| faulty.try_query_batch(b).unwrap().is_err())
        .collect()
}

/// Satellite 1 (sweep): over 200 seeds, fault patterns are exactly
/// reproducible per seed, differ across seeds, and the aggregate fault
/// frequency matches the plan rate.
#[test]
fn seeded_sweep_reproducible_and_rate_accurate() {
    const SEEDS: u64 = 200;
    const QUERIES: usize = 50;
    const RATE: f32 = 0.2;
    let inner = oracle();
    let batches = batches(QUERIES);

    let mut total_faults = 0u64;
    let mut distinct_patterns = std::collections::HashSet::new();
    for seed in 0..SEEDS {
        let first = fault_pattern(&inner, &batches, RATE, seed);
        let second = fault_pattern(&inner, &batches, RATE, seed);
        assert_eq!(first, second, "seed {seed} fault pattern not reproducible");
        total_faults += first.iter().filter(|&&f| f).count() as u64;
        distinct_patterns.insert(first);
    }

    // 10 000 Bernoulli(0.2) draws: the observed frequency must sit well
    // inside ±0.05 of the rate (a >12 sigma band — failures here mean a
    // broken RNG keying, not bad luck).
    let freq = total_faults as f64 / (SEEDS as usize * QUERIES) as f64;
    assert!(
        (freq - RATE as f64).abs() < 0.05,
        "fault frequency {freq:.4} far from configured rate {RATE}"
    );
    // The seed must actually steer the draws.
    assert!(
        distinct_patterns.len() > SEEDS as usize / 2,
        "only {} distinct fault patterns over {SEEDS} seeds",
        distinct_patterns.len()
    );
}

/// Repeating the *same* content re-rolls the fault draw (the per-content
/// attempt counter feeds the seed), so a retry of a dropped query is not
/// doomed to drop forever.
#[test]
fn repeated_content_rerolls_the_draw() {
    let inner = oracle();
    let faulty = FaultyOracle::new(&inner, Transient { rate: 0.5 }, 77);
    let batch = &batches(1)[0];
    let fates: Vec<bool> = (0..64)
        .map(|_| faulty.try_query_batch(batch).unwrap().is_err())
        .collect();
    assert!(
        fates.iter().any(|&f| f),
        "rate 0.5 never faulted in 64 tries"
    );
    assert!(
        fates.iter().any(|&f| !f),
        "rate 0.5 never passed in 64 tries"
    );
}

/// Satellite 1 (accounting): a counting layer *inside* the retry loop
/// bills every attempt — dropped requests reach a real endpoint's meter
/// too — while the sealed model only ever runs the delivered ones.
#[test]
fn counting_inside_retries_bills_every_attempt() {
    const LOGICAL: u64 = 40;
    let inner = oracle();
    let faulty = FaultyOracle::new(&inner, Transient { rate: 0.3 }, 4242);
    let counting = CountingOracle::new(&faulty);
    let policy = RetryPolicy {
        max_attempts: 12,
        ..RetryPolicy::default()
    };
    let retrying = RetryingOracle::new(&counting, policy);

    let mut rng = Rng::new(5);
    for _ in 0..LOGICAL {
        let batch = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let probs = retrying.query(&batch).unwrap();
        assert_eq!(probs.shape(), &[2, 5]);
    }

    let faults = faulty.faults_injected();
    assert!(faults > 0, "rate 0.3 over 40 queries must fault");
    assert_eq!(retrying.exhausted(), 0);
    // Every injected fault cost exactly one retry...
    assert_eq!(retrying.retries(), faults);
    // ...and the attempt-level meter saw the logical queries plus every
    // retried attempt, batch for batch, image for image.
    assert_eq!(counting.local_batches(), LOGICAL + faults);
    assert_eq!(counting.local_queries(), (LOGICAL + faults) * 2);
    // The sealed model only ran the delivered responses.
    assert_eq!(inner.queries_used(), LOGICAL * 2);
    // The merged stats view agrees with each layer's own tally.
    let stats = retrying.oracle_stats();
    assert_eq!(stats.faults_injected, faults);
    assert_eq!(stats.retries, faults);
    assert_eq!(stats.retry_exhausted, 0);
}

/// The mirror stack: a counting layer *outside* the retry loop bills
/// each logical query exactly once no matter how many attempts the
/// retries burned underneath. This is why `Verdict::queries` is
/// fault-invariant.
#[test]
fn counting_outside_retries_bills_logical_queries_once() {
    const LOGICAL: u64 = 40;
    let inner = oracle();
    let faulty = FaultyOracle::new(&inner, Transient { rate: 0.3 }, 4242);
    let policy = RetryPolicy {
        max_attempts: 12,
        ..RetryPolicy::default()
    };
    let retrying = RetryingOracle::new(&faulty, policy);
    let counting = CountingOracle::new(&retrying);

    let mut rng = Rng::new(5);
    for _ in 0..LOGICAL {
        let batch = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        counting.query(&batch).unwrap();
    }

    assert!(retrying.retries() > 0);
    assert_eq!(counting.local_batches(), LOGICAL);
    assert_eq!(counting.local_queries(), LOGICAL * 2);
    assert_eq!(inner.queries_used(), LOGICAL * 2);
}
