//! Property-style tests on the workspace's core data structures and
//! invariants.
//!
//! The build environment is offline, so instead of proptest these run each
//! property over `CASES` deterministic seeds: case `i` derives its inputs
//! from `Rng::new(SEED_BASE ^ i)`, which keeps failures reproducible (the
//! failing case index pins the exact inputs).

use bprom_suite::attacks::AttackKind;
use bprom_suite::metrics::{auroc, f1_score};
use bprom_suite::nn::loss::softmax_cross_entropy;
use bprom_suite::nn::softmax;
use bprom_suite::tensor::{Rng, Tensor};
use bprom_suite::vp::VisualPrompt;

const CASES: u64 = 64;
const SEED_BASE: u64 = 0x42505_24f4d; // "BPROM"

/// Runs `body` once per case with a case-derived RNG.
fn for_each_case(body: impl Fn(u64, &mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::new(SEED_BASE ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        body(case, &mut rng);
    }
}

/// A tensor of the given shape with bounded finite values.
fn tensor(dims: &[usize], rng: &mut Rng) -> Tensor {
    Tensor::rand_uniform(dims, -10.0, 10.0, rng)
}

/// An image tensor with values in [0, 1].
fn image(dims: &[usize], rng: &mut Rng) -> Tensor {
    Tensor::rand_uniform(dims, 0.0, 1.0, rng)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

// ---- tensor algebra ----

#[test]
fn matmul_distributes_over_addition() {
    for_each_case(|case, rng| {
        let a = tensor(&[3, 4], rng);
        let b = tensor(&[4, 5], rng);
        let c = tensor(&[4, 5], rng);
        let lhs = a.matmul(&b.add_t(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add_t(&a.matmul(&c).unwrap()).unwrap();
        assert!(close(&lhs, &rhs, 1e-3), "case {case}");
    });
}

#[test]
fn matmul_is_associative() {
    for_each_case(|case, rng| {
        let a = tensor(&[2, 3], rng);
        let b = tensor(&[3, 4], rng);
        let c = tensor(&[4, 2], rng);
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(close(&lhs, &rhs, 1e-2), "case {case}");
    });
}

#[test]
fn transpose_is_involution() {
    for_each_case(|case, rng| {
        let t = tensor(&[5, 7], rng);
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt, "case {case}");
    });
}

#[test]
fn reshape_preserves_sum() {
    for_each_case(|case, rng| {
        let t = tensor(&[4, 6], rng);
        let r = t.reshape(&[2, 12]).unwrap();
        assert!((t.sum() - r.sum()).abs() < 1e-3, "case {case}");
    });
}

#[test]
fn add_commutes() {
    for_each_case(|case, rng| {
        let a = tensor(&[3, 3], rng);
        let b = tensor(&[3, 3], rng);
        assert!(
            close(&a.add_t(&b).unwrap(), &b.add_t(&a).unwrap(), 1e-6),
            "case {case}"
        );
    });
}

#[test]
fn stack_then_sample_round_trips() {
    for_each_case(|case, rng| {
        let a = tensor(&[2, 3], rng);
        let b = tensor(&[2, 3], rng);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.sample(0).unwrap(), a, "case {case}");
        assert_eq!(s.sample(1).unwrap(), b, "case {case}");
    });
}

// ---- rng ----

#[test]
fn rng_below_is_in_range() {
    for_each_case(|case, rng| {
        let n = 1 + rng.below(999);
        for _ in 0..50 {
            assert!(rng.below(n) < n, "case {case} n {n}");
        }
    });
}

#[test]
fn shuffle_is_a_permutation() {
    for_each_case(|case, rng| {
        let len = 1 + rng.below(63);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..len).collect::<Vec<_>>(), "case {case}");
    });
}

// ---- softmax / loss ----

#[test]
fn softmax_rows_are_distributions() {
    for_each_case(|case, rng| {
        let t = tensor(&[4, 6], rng);
        let p = softmax(&t).unwrap();
        for i in 0..4 {
            let row = &p.data()[i * 6..(i + 1) * 6];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "case {case}");
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)), "case {case}");
        }
    });
}

#[test]
fn cross_entropy_is_nonnegative() {
    for_each_case(|case, rng| {
        let t = tensor(&[3, 5], rng);
        let labels: Vec<usize> = (0..3).map(|_| rng.below(5)).collect();
        let (loss, grad) = softmax_cross_entropy(&t, &labels).unwrap();
        assert!(loss >= -1e-5, "case {case}");
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for i in 0..3 {
            let s: f32 = grad.data()[i * 5..(i + 1) * 5].iter().sum();
            assert!(s.abs() < 1e-4, "case {case}");
        }
    });
}

// ---- metrics ----

#[test]
fn auroc_is_bounded_and_antisymmetric() {
    for_each_case(|case, rng| {
        let scores: Vec<f32> = (0..8)
            .map(|_| Tensor::rand_uniform(&[1], -5.0, 5.0, rng).data()[0])
            .collect();
        let mut labels: Vec<bool> = (0..8).map(|_| rng.below(2) == 1).collect();
        // Ensure both classes present.
        labels[0] = true;
        labels[1] = false;
        let auc = auroc(&scores, &labels).unwrap();
        assert!((0.0..=1.0).contains(&auc), "case {case}");
        let neg: Vec<f32> = scores.iter().map(|s| -s).collect();
        let auc_neg = auroc(&neg, &labels).unwrap();
        assert!((auc + auc_neg - 1.0).abs() < 1e-4, "case {case}");
    });
}

#[test]
fn f1_is_bounded() {
    for_each_case(|case, rng| {
        let preds: Vec<bool> = (0..10).map(|_| rng.below(2) == 1).collect();
        let actual: Vec<bool> = (0..10).map(|_| rng.below(2) == 1).collect();
        let f1 = f1_score(&preds, &actual).unwrap();
        assert!((0.0..=1.0).contains(&f1), "case {case}");
    });
}

// ---- attacks ----

#[test]
fn triggered_images_stay_in_unit_range() {
    for_each_case(|case, rng| {
        let img = image(&[3, 16, 16], rng);
        for kind in [
            AttackKind::BadNets,
            AttackKind::Blend,
            AttackKind::WaNet,
            AttackKind::Bpp,
        ] {
            let attack = kind.build(16, rng).unwrap();
            let out = attack.apply(&img, rng).unwrap();
            assert_eq!(out.shape(), img.shape(), "case {case} {kind:?}");
            assert!(out.min() >= 0.0 && out.max() <= 1.0, "case {case} {kind:?}");
        }
    });
}

#[test]
fn static_patch_attacks_are_idempotent() {
    for_each_case(|case, rng| {
        let img = image(&[3, 16, 16], rng);
        let mut attack_rng = Rng::new(0);
        let attack = AttackKind::BadNets.build(16, &mut attack_rng).unwrap();
        let once = attack.apply(&img, &mut attack_rng).unwrap();
        let twice = attack.apply(&once, &mut attack_rng).unwrap();
        assert!(close(&once, &twice, 1e-6), "case {case}");
    });
}

// ---- visual prompting ----

#[test]
fn prompt_flat_round_trip() {
    for_each_case(|case, rng| {
        let n = 3 * (16 * 16 - 8 * 8);
        let values = Tensor::rand_uniform(&[n], -1.0, 1.0, rng);
        let mut prompt = VisualPrompt::new(3, 16, 4).unwrap();
        prompt.set_flat(values.data()).unwrap();
        let back = prompt.to_flat();
        assert_eq!(back.len(), n, "case {case}");
        for (a, b) in back.iter().zip(values.data()) {
            assert!((a - b).abs() < 1e-7, "case {case}");
        }
    });
}

#[test]
fn prompted_batch_matches_singles() {
    for_each_case(|case, rng| {
        let imgs = image(&[3, 3, 8, 8], rng);
        let prompt = VisualPrompt::random(3, 16, 4, rng).unwrap();
        let batch = prompt.apply_batch(&imgs).unwrap();
        for i in 0..3 {
            let single = prompt.apply(&imgs.sample(i).unwrap()).unwrap();
            assert_eq!(batch.sample(i).unwrap(), single, "case {case}");
        }
    });
}

#[test]
fn prompted_output_is_valid_image() {
    for_each_case(|case, rng| {
        let img = image(&[3, 8, 8], rng);
        let prompt = VisualPrompt::random(3, 16, 4, rng).unwrap();
        let out = prompt.apply(&img).unwrap();
        assert_eq!(out.shape(), &[3, 16, 16], "case {case}");
        assert!(out.min() >= 0.0 && out.max() <= 1.0, "case {case}");
    });
}
