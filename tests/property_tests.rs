//! Property-based tests (proptest) on the workspace's core data
//! structures and invariants.

use bprom_suite::attacks::AttackKind;
use bprom_suite::metrics::{auroc, f1_score};
use bprom_suite::nn::loss::softmax_cross_entropy;
use bprom_suite::nn::softmax;
use bprom_suite::tensor::{Rng, Tensor};
use bprom_suite::vp::VisualPrompt;
use proptest::prelude::*;

/// Strategy: a tensor of the given shape with bounded finite values.
fn tensor(dims: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |data| Tensor::from_vec(data, dims).expect("shape matches"))
}

/// Strategy: an image tensor with values in [0, 1].
fn image(dims: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(0.0f32..=1.0, n)
        .prop_map(move |data| Tensor::from_vec(data, dims).expect("shape matches"))
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tensor algebra ----

    #[test]
    fn matmul_distributes_over_addition(a in tensor(&[3, 4]), b in tensor(&[4, 5]), c in tensor(&[4, 5])) {
        let lhs = a.matmul(&b.add_t(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add_t(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn matmul_is_associative(a in tensor(&[2, 3]), b in tensor(&[3, 4]), c in tensor(&[4, 2])) {
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(close(&lhs, &rhs, 1e-2));
    }

    #[test]
    fn transpose_is_involution(t in tensor(&[5, 7])) {
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(t, tt);
    }

    #[test]
    fn reshape_preserves_sum(t in tensor(&[4, 6])) {
        let r = t.reshape(&[2, 12]).unwrap();
        prop_assert!((t.sum() - r.sum()).abs() < 1e-3);
    }

    #[test]
    fn add_commutes(a in tensor(&[3, 3]), b in tensor(&[3, 3])) {
        prop_assert!(close(&a.add_t(&b).unwrap(), &b.add_t(&a).unwrap(), 1e-6));
    }

    #[test]
    fn stack_then_sample_round_trips(a in tensor(&[2, 3]), b in tensor(&[2, 3])) {
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        prop_assert_eq!(s.sample(0).unwrap(), a);
        prop_assert_eq!(s.sample(1).unwrap(), b);
    }

    // ---- rng ----

    #[test]
    fn rng_below_is_in_range(seed in any::<u64>(), n in 1usize..1000) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn shuffle_is_a_permutation(seed in any::<u64>(), len in 1usize..64) {
        let mut rng = Rng::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    // ---- softmax / loss ----

    #[test]
    fn softmax_rows_are_distributions(t in tensor(&[4, 6])) {
        let p = softmax(&t).unwrap();
        for i in 0..4 {
            let row = &p.data()[i * 6..(i + 1) * 6];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative(t in tensor(&[3, 5]), labels in proptest::collection::vec(0usize..5, 3)) {
        let (loss, grad) = softmax_cross_entropy(&t, &labels).unwrap();
        prop_assert!(loss >= -1e-5);
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for i in 0..3 {
            let s: f32 = grad.data()[i * 5..(i + 1) * 5].iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    // ---- metrics ----

    #[test]
    fn auroc_is_bounded_and_antisymmetric(
        scores in proptest::collection::vec(-5.0f32..5.0, 8),
        flips in proptest::collection::vec(any::<bool>(), 8),
    ) {
        // Ensure both classes present.
        let mut labels = flips;
        labels[0] = true;
        labels[1] = false;
        let auc = auroc(&scores, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&auc));
        let neg: Vec<f32> = scores.iter().map(|s| -s).collect();
        let auc_neg = auroc(&neg, &labels).unwrap();
        prop_assert!((auc + auc_neg - 1.0).abs() < 1e-4);
    }

    #[test]
    fn f1_is_bounded(preds in proptest::collection::vec(any::<bool>(), 10), actual in proptest::collection::vec(any::<bool>(), 10)) {
        let f1 = f1_score(&preds, &actual).unwrap();
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    // ---- attacks ----

    #[test]
    fn triggered_images_stay_in_unit_range(img in image(&[3, 16, 16]), seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for kind in [AttackKind::BadNets, AttackKind::Blend, AttackKind::WaNet, AttackKind::Bpp] {
            let attack = kind.build(16, &mut rng).unwrap();
            let out = attack.apply(&img, &mut rng).unwrap();
            prop_assert_eq!(out.shape(), img.shape());
            prop_assert!(out.min() >= 0.0 && out.max() <= 1.0);
        }
    }

    #[test]
    fn static_patch_attacks_are_idempotent(img in image(&[3, 16, 16])) {
        let mut rng = Rng::new(0);
        let attack = AttackKind::BadNets.build(16, &mut rng).unwrap();
        let once = attack.apply(&img, &mut rng).unwrap();
        let twice = attack.apply(&once, &mut rng).unwrap();
        prop_assert!(close(&once, &twice, 1e-6));
    }

    // ---- visual prompting ----

    #[test]
    fn prompt_flat_round_trip(values in proptest::collection::vec(-1.0f32..1.0, 3 * (16 * 16 - 8 * 8))) {
        let mut prompt = VisualPrompt::new(3, 16, 4).unwrap();
        prompt.set_flat(&values).unwrap();
        let back = prompt.to_flat();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn prompted_batch_matches_singles(imgs in image(&[3, 3, 8, 8]), seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        let batch = prompt.apply_batch(&imgs).unwrap();
        for i in 0..3 {
            let single = prompt.apply(&imgs.sample(i).unwrap()).unwrap();
            prop_assert_eq!(batch.sample(i).unwrap(), single);
        }
    }

    #[test]
    fn prompted_output_is_valid_image(img in image(&[3, 8, 8]), seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        let out = prompt.apply(&img).unwrap();
        prop_assert_eq!(out.shape(), &[3, 16, 16]);
        prop_assert!(out.min() >= 0.0 && out.max() <= 1.0);
    }
}
