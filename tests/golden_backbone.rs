//! Golden-run regression suite for the backbone scenario: the serialized
//! `DetectionReport` of a pinned pipeline — a tiny detector auditing a
//! {clean backbone, BadNets backbone} composite zoo behind the hostile
//! retry → fault stack — is checked in for three seeds. The fixtures pin
//! every stage the scenario adds on top of the monolithic pipeline:
//! backbone pretraining (clean and poisoned), frozen-model prompt
//! adaptation, label-map translation, the composite's query accounting,
//! the `scenario: backbone` stamp, the clean-downstream-training
//! attestation, and any `B013` findings the rule engine derives from it.
//!
//! Regenerate fixtures after an *intentional* behavior change with:
//!
//! ```text
//! BPROM_BLESS=1 cargo test --test golden_backbone
//! ```
//!
//! As in `golden_report`, the runs hard-pin `CacheConfig::unbounded()`
//! and `OracleRegime::FullScores` so the CI matrix legs (`BPROM_QCACHE`,
//! `BPROM_ORACLE_REGIME`) cannot drift the pinned numbers; thread count
//! is already report-invariant.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{Bprom, BpromConfig, CacheConfig, DetectionReport, OracleRegime};
use bprom_suite::data::SynthDataset;
use bprom_suite::faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_suite::nn::TrainConfig;
use bprom_suite::scenarios::{
    build_backbone_zoo, evaluate_backbone_zoo_via, BackboneScenarioConfig,
};
use bprom_suite::tensor::Rng;
use bprom_suite::vp::PromptTrainConfig;
use std::path::PathBuf;

fn fixture_path(seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_backbone_seed_{seed}.json"))
}

/// The pinned pipeline: fit a tiny detector, build a two-composite
/// backbone zoo (one clean backbone, one BadNets-poisoned backbone, each
/// prompt-adapted downstream on clean data), and evaluate it behind the
/// hostile retry → fault stack. Everything derives from `seed`;
/// wall-clock is the only field zeroed.
fn golden_report(seed: u64) -> DetectionReport {
    let mut rng = Rng::new(seed);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    config.cache = CacheConfig::unbounded();
    config.regime = OracleRegime::FullScores;
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = BackboneScenarioConfig::new(
        SynthDataset::Cifar10,
        SynthDataset::Stl10,
        AttackKind::BadNets,
    );
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 30;
    zoo_cfg.downstream_samples_per_class = 10;
    zoo_cfg.prompt = PromptTrainConfig {
        epochs: 2,
        ..PromptTrainConfig::default()
    };
    let zoo = build_backbone_zoo(&zoo_cfg, &mut rng).unwrap();

    let mut report =
        evaluate_backbone_zoo_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
            let plan = Stack(vec![
                Box::new(Transient { rate: 0.1 }),
                Box::new(Quantize { decimals: 3 }),
            ]);
            let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            detector.inspect(&retrying, rng)
        })
        .unwrap();
    report.mean_inspect_ms = 0.0;
    report
}

/// Line-level diff of two serialized reports: `None` when identical,
/// otherwise a readable summary of every divergent line.
fn diff_lines(want: &str, got: &str) -> Option<String> {
    if want == got {
        return None;
    }
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    let mut out = String::new();
    for i in 0..want_lines.len().max(got_lines.len()) {
        let w = want_lines.get(i).copied().unwrap_or("<missing>");
        let g = got_lines.get(i).copied().unwrap_or("<missing>");
        if w != g {
            out.push_str(&format!("  line {}:\n    -{w}\n    +{g}\n", i + 1));
        }
    }
    Some(out)
}

fn assert_matches_fixture(seed: u64) {
    let got = golden_report(seed).to_json().unwrap();
    let path = fixture_path(seed);
    if std::env::var("BPROM_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             BPROM_BLESS=1 cargo test --test golden_backbone",
            path.display()
        )
    });
    if let Some(diff) = diff_lines(&want, &got) {
        panic!(
            "backbone detection report for seed {seed} drifted from {} \
             (-fixture / +current):\n{diff}\
             If the change is intentional, re-bless with \
             BPROM_BLESS=1 cargo test --test golden_backbone",
            path.display()
        );
    }
}

#[test]
fn golden_backbone_seed_42() {
    assert_matches_fixture(42);
}

#[test]
fn golden_backbone_seed_1337() {
    assert_matches_fixture(1337);
}

#[test]
fn golden_backbone_seed_2024() {
    assert_matches_fixture(2024);
}

/// The committed fixtures are well-formed backbone-scenario reports —
/// scenario stamp, attestation and per-audit records included — and the
/// comparison really is bit-for-bit: perturbing a single character of a
/// fixture is flagged with a line-level diff.
#[test]
fn fixtures_parse_and_one_bit_drift_is_detected() {
    for seed in [42u64, 1337, 2024] {
        let path = fixture_path(seed);
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); regenerate with \
                 BPROM_BLESS=1 cargo test --test golden_backbone",
                path.display()
            )
        });
        let report = DetectionReport::from_json(&want).unwrap();
        assert_eq!(report.scenario, "backbone");
        assert_eq!(report.scores.len(), 2);
        assert_eq!(report.labels.iter().filter(|&&b| b).count(), 1);
        assert!(report.total_queries > 0);
        assert!(report.total_faults > 0, "hostile stack must inject faults");
        assert_eq!(report.audits.len(), 2);
        for audit in &report.audits {
            assert_eq!(audit.scenario, "backbone");
            assert!(
                audit.signals.clean_downstream_training,
                "every backbone audit must carry the clean-downstream \
                 attestation B013 keys on"
            );
            // B013 only ever fires with the attestation present; when the
            // pinned run derives it, the fixture locks that decision too.
            for finding in &audit.findings {
                if finding.rule.code() == "B013" {
                    assert!(finding.rule.is_backdoor_evidence());
                }
            }
        }

        let pos = want
            .find(|c: char| c.is_ascii_digit())
            .expect("fixture contains numbers");
        let mut bytes = want.clone().into_bytes();
        let old = bytes[pos];
        bytes[pos] = if old == b'9' { b'8' } else { old + 1 };
        let perturbed = String::from_utf8(bytes).unwrap();
        let diff = diff_lines(&want, &perturbed).expect("perturbation must be detected");
        assert!(diff.contains("line "));
    }
}
