//! Golden-run regression suite: the serialized `DetectionReport` of a
//! small but fully representative pipeline run — meta-classifier scores,
//! verdict labels, prompted accuracies, and the exact query / fault /
//! penalty / cache budgets — is pinned as a checked-in fixture for three
//! seeds over a zoo of {clean, BadNets, Blend} suspicious models behind
//! the hostile oracle stack. Any drift in any pipeline stage (data
//! generation, shadow training, CMA-ES, probing, the meta forest, fault
//! injection, cache accounting) changes the report and fails the
//! comparison with a line-level diff.
//!
//! Regenerate fixtures after an *intentional* behavior change with:
//!
//! ```text
//! BPROM_BLESS=1 cargo test --test golden_report
//! ```
//!
//! The runs hard-pin `CacheConfig::unbounded()` (ignoring `BPROM_QCACHE`)
//! so the pinned cache tallies hold on every CI matrix leg; thread count
//! is already report-invariant.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{
    build_suspicious_zoo, evaluate_detector_via, Bprom, BpromConfig, CacheConfig, DetectionReport,
    OracleRegime, ZooConfig,
};
use bprom_suite::data::SynthDataset;
use bprom_suite::faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_suite::nn::TrainConfig;
use bprom_suite::tensor::Rng;
use bprom_suite::vp::PromptTrainConfig;
use std::path::PathBuf;

fn fixture_path(seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_seed_{seed}.json"))
}

/// The pinned pipeline: fit a tiny detector, build a three-model zoo
/// (one clean, one BadNets-backdoored, one Blend-backdoored), and
/// evaluate it behind the hostile retry → fault stack. Everything is
/// derived from `seed`; wall-clock is the only field zeroed.
fn golden_report(seed: u64) -> DetectionReport {
    let mut rng = Rng::new(seed);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    // Pin the cache policy so the fixture's cache tallies are immune to
    // the BPROM_QCACHE env override CI applies on one matrix leg, and the
    // oracle regime so the BPROM_ORACLE_REGIME legs can't drift the
    // pinned scores.
    config.cache = CacheConfig::unbounded();
    config.regime = OracleRegime::FullScores;
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let mut badnets = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    badnets.clean = 1;
    badnets.backdoored = 1;
    badnets.samples_per_class = 20;
    badnets.train = train;
    let mut zoo = build_suspicious_zoo(&badnets, &mut rng).unwrap();
    let mut blend = ZooConfig::new(SynthDataset::Cifar10, AttackKind::Blend);
    blend.clean = 0;
    blend.backdoored = 1;
    blend.samples_per_class = 20;
    blend.train = train;
    zoo.extend(build_suspicious_zoo(&blend, &mut rng).unwrap());

    let mut report = evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
        let plan = Stack(vec![
            Box::new(Transient { rate: 0.1 }),
            Box::new(Quantize { decimals: 3 }),
        ]);
        let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
        let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
        detector.inspect(&retrying, rng)
    })
    .unwrap();
    report.mean_inspect_ms = 0.0;
    report
}

/// Line-level diff of two serialized reports: `None` when identical,
/// otherwise a readable summary of every divergent line.
fn diff_lines(want: &str, got: &str) -> Option<String> {
    if want == got {
        return None;
    }
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    let mut out = String::new();
    for i in 0..want_lines.len().max(got_lines.len()) {
        let w = want_lines.get(i).copied().unwrap_or("<missing>");
        let g = got_lines.get(i).copied().unwrap_or("<missing>");
        if w != g {
            out.push_str(&format!("  line {}:\n    -{w}\n    +{g}\n", i + 1));
        }
    }
    Some(out)
}

fn assert_matches_fixture(seed: u64) {
    let got = golden_report(seed).to_json().unwrap();
    let path = fixture_path(seed);
    if std::env::var("BPROM_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             BPROM_BLESS=1 cargo test --test golden_report",
            path.display()
        )
    });
    if let Some(diff) = diff_lines(&want, &got) {
        panic!(
            "detection report for seed {seed} drifted from {} \
             (-fixture / +current):\n{diff}\
             If the change is intentional, re-bless with \
             BPROM_BLESS=1 cargo test --test golden_report",
            path.display()
        );
    }
}

#[test]
fn golden_seed_42() {
    assert_matches_fixture(42);
}

#[test]
fn golden_seed_1337() {
    assert_matches_fixture(1337);
}

#[test]
fn golden_seed_2024() {
    assert_matches_fixture(2024);
}

/// The committed fixtures are well-formed reports for the pinned zoo —
/// and the comparison really is bit-for-bit: perturbing a single
/// character of a fixture is flagged with a line-level diff.
#[test]
fn fixtures_parse_and_one_bit_drift_is_detected() {
    for seed in [42u64, 1337, 2024] {
        let path = fixture_path(seed);
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); regenerate with \
                 BPROM_BLESS=1 cargo test --test golden_report",
                path.display()
            )
        });
        let report = DetectionReport::from_json(&want).unwrap();
        assert_eq!(report.scores.len(), 3);
        assert_eq!(report.labels.iter().filter(|&&b| b).count(), 2);
        assert_eq!(report.prompted_accuracies.len(), 3);
        assert!(report.total_queries > 0);
        assert!(report.total_faults > 0, "hostile stack must inject faults");
        assert!(report.total_cache_misses > 0);

        // Flip one digit character and require the comparator to flag
        // exactly that corruption.
        let pos = want
            .find(|c: char| c.is_ascii_digit())
            .expect("fixture contains numbers");
        let mut perturbed = want.clone();
        let old = perturbed.as_bytes()[pos];
        let new = if old == b'9' { b'8' } else { old + 1 };
        // SAFETY-free byte swap via a Vec round trip keeps this simple.
        let mut bytes = perturbed.into_bytes();
        bytes[pos] = new;
        perturbed = String::from_utf8(bytes).unwrap();
        let diff = diff_lines(&want, &perturbed).expect("perturbation must be detected");
        assert!(diff.contains("line "));
    }
}
