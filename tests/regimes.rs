//! End-to-end contract of the declared oracle regimes (`bprom-regimes`):
//! an audit of a constrained endpoint — top-k truncated or label-only —
//! still runs the full BPROM pipeline, records its regime on every audit
//! record and incident, and stays deterministic enough to pin as a
//! golden fixture.
//!
//! The label-only leg is the hardest regime (no soft score ever reaches
//! the detector: CMA-ES runs on miss-rate fitness, the meta-forest on
//! vote-count features), so its full `DetectionReport` is pinned as a
//! checked-in fixture. Regenerate after an *intentional* behavior change
//! with:
//!
//! ```text
//! BPROM_BLESS=1 cargo test --test regimes
//! ```

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{
    build_suspicious_zoo, evaluate_detector, Bprom, BpromConfig, CacheConfig, DetectionReport,
    OracleRegime, ZooConfig,
};
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::TrainConfig;
use bprom_suite::tensor::Rng;
use bprom_suite::verdict::{validate_incident, Mode, RulePolicy};
use bprom_suite::vp::PromptTrainConfig;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("golden_label_only_seed_42.json")
}

/// One pinned audit at golden-fixture scale under the given regime: a
/// tiny detector fitted for that regime inspects a {clean, BadNets} zoo
/// through plain oracles. Cache and regime are pinned in the config so
/// the run is immune to the CI matrix's env overrides.
fn regime_report(regime: OracleRegime) -> DetectionReport {
    let mut rng = Rng::new(42);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    config.cache = CacheConfig::unbounded();
    config.regime = regime;
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 20;
    zoo_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    let mut report = evaluate_detector(&detector, zoo, &mut rng).unwrap();
    report.mean_inspect_ms = 0.0;
    report
}

fn diff_lines(want: &str, got: &str) -> Option<String> {
    if want == got {
        return None;
    }
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    let mut out = String::new();
    for i in 0..want_lines.len().max(got_lines.len()) {
        let w = want_lines.get(i).copied().unwrap_or("<missing>");
        let g = got_lines.get(i).copied().unwrap_or("<missing>");
        if w != g {
            out.push_str(&format!("  line {}:\n    -{w}\n    +{g}\n", i + 1));
        }
    }
    Some(out)
}

/// Every audit of a degraded-regime run records the regime on its audit
/// record, and the incident report it rolls into is schema-valid and
/// carries the regime on the model incident.
fn assert_regime_recorded(regime: OracleRegime, report: &DetectionReport) {
    assert_eq!(report.audits.len(), 2);
    for audit in &report.audits {
        assert_eq!(audit.regime, regime.as_wire());
    }
    let incident = report.incident("regimes-test", &RulePolicy::default(), Mode::Learning);
    let text = incident.to_json_string();
    let doc = bprom_suite::obs::json::Value::parse(&text).unwrap();
    validate_incident(&doc)
        .unwrap_or_else(|errs| panic!("{regime} incident failed schema validation: {errs:?}"));
    for model in &incident.incidents {
        assert_eq!(model.regimes, vec![regime.as_wire()]);
    }
}

/// The label-only pipeline end to end, pinned byte-for-byte: miss-rate
/// CMA-ES fitness, vote-count meta-features, and a per-regime forest,
/// with the full report (scores, budgets, per-audit findings) compared
/// against the checked-in fixture.
#[test]
fn label_only_golden_fixture() {
    let report = regime_report(OracleRegime::LabelOnly);
    assert_regime_recorded(OracleRegime::LabelOnly, &report);
    assert!(report.total_queries > 0);

    let got = report.to_json().unwrap();
    let path = fixture_path();
    if std::env::var("BPROM_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing label-only golden fixture {} ({e}); regenerate with \
             BPROM_BLESS=1 cargo test --test regimes",
            path.display()
        )
    });
    if let Some(diff) = diff_lines(&want, &got) {
        panic!(
            "label-only detection report drifted from {} \
             (-fixture / +current):\n{diff}\
             If the change is intentional, re-bless with \
             BPROM_BLESS=1 cargo test --test regimes",
            path.display()
        );
    }
}

/// The committed fixture parses back through the typed API and really is
/// a label-only run: two audits, regime recorded, non-trivial spend.
#[test]
fn label_only_fixture_parses_and_records_regime() {
    let path = fixture_path();
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing label-only golden fixture {} ({e}); regenerate with \
             BPROM_BLESS=1 cargo test --test regimes",
            path.display()
        )
    });
    let report = DetectionReport::from_json(&want).unwrap();
    assert_eq!(report.scores.len(), 2);
    assert_eq!(report.audits.len(), 2);
    assert!(report.total_queries > 0);
    for audit in &report.audits {
        assert_eq!(audit.regime, "label_only");
    }
}

/// Top-k truncation end to end: the renormalized feature path produces a
/// schema-valid incident with the regime recorded.
#[test]
fn top_k_audit_records_regime_in_schema_valid_incident() {
    let report = regime_report(OracleRegime::TopK(3));
    assert_regime_recorded(OracleRegime::TopK(3), &report);
}

/// A fleet can mix regimes: audits collected under different regimes
/// correlate into one incident per model with every distinct regime
/// recorded in first-seen order.
#[test]
fn mixed_regime_fleet_collects_distinct_regimes() {
    use bprom_suite::verdict::{Signals, VerdictPipeline};
    let mut pipeline = VerdictPipeline::new("mixed", RulePolicy::default(), Mode::Learning);
    pipeline.collect_in_regime("mA", "full", Signals::default());
    pipeline.collect_in_regime("mA", "label_only", Signals::default());
    pipeline.collect_in_regime("mA", "full", Signals::default());
    let report = pipeline.report();
    assert_eq!(report.incidents.len(), 1);
    assert_eq!(report.incidents[0].regimes, vec!["full", "label_only"]);
    let doc = bprom_suite::obs::json::Value::parse(&report.to_json_string()).unwrap();
    validate_incident(&doc).unwrap();
}
