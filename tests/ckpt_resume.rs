//! Crash-safety contract of the `bprom-ckpt` subsystem, driven through
//! the `ckpt_fixture` binary: a pipeline killed at a checkpoint boundary
//! and resumed must produce a detection report byte-identical to an
//! uninterrupted run. The full boundary sweep (every kill point × thread
//! counts × hostile oracle) runs in CI; here a spread of kill points at
//! one thread count keeps tier-1 wall-clock bounded while still crossing
//! every stage kind (manifest, shadow, CMA-ES generation, prompt, meta,
//! zoo, verdict).

use std::process::Command;

#[test]
fn kill_resume_sweep_is_byte_identical() {
    let status = Command::new(env!("CARGO_BIN_EXE_ckpt_fixture"))
        .args([
            "--sweep",
            "--threads",
            "2",
            "--points",
            "1,3,9,14,19,23,27,32",
        ])
        .env_remove("BPROM_CRASH_AFTER")
        .env_remove("BPROM_CKPT_DIR")
        .status()
        .expect("spawn ckpt_fixture");
    assert!(status.success(), "kill-resume sweep failed: {status}");
}
