//! Crash-safety contract of the `bprom-ckpt` subsystem, driven through
//! the `ckpt_fixture` binary: a pipeline killed at a checkpoint boundary
//! and resumed must produce a detection report byte-identical to an
//! uninterrupted run. The full boundary sweep (every kill point × thread
//! counts × hostile oracle) runs in the CI `kill-resume` job; tier 1
//! crosses three representative kill points (an early shadow, a
//! mid-CMA-ES generation, a late verdict boundary) at one thread count,
//! and the wider eight-point spread over every stage kind is `#[ignore]`d
//! into tier 2 (`cargo test -q --workspace -- --ignored`).

use std::process::Command;

fn sweep(points: &str) {
    let status = Command::new(env!("CARGO_BIN_EXE_ckpt_fixture"))
        .args(["--sweep", "--threads", "2", "--points", points])
        .env_remove("BPROM_CRASH_AFTER")
        .env_remove("BPROM_CKPT_DIR")
        .status()
        .expect("spawn ckpt_fixture");
    assert!(status.success(), "kill-resume sweep failed: {status}");
}

#[test]
fn kill_resume_is_byte_identical() {
    sweep("3,19,32");
}

#[test]
#[ignore = "tier-2 eight-point kill spread; CI runs it via -- --ignored"]
fn kill_resume_spread_is_byte_identical() {
    sweep("1,3,9,14,19,23,27,32");
}
