//! The MLaaS marketplace scenario as an integration test: a buyer
//! screens a queue of third-party uploads through the fleet audit
//! engine. Promoted from `examples/mlaas_audit.rs` so CI proves the
//! engine's two contracts on a realistic queue:
//!
//! * the fleet `incident.json` validates against the frozen incident
//!   schema (`INCIDENT_SCHEMA_VERSION`), and
//! * shadow training runs **once per registry key** — repeated specs in
//!   the queue never emit duplicate `shadow_training` spans.

use bprom_suite::attacks::AttackKind;
use bprom_suite::audit::{AuditEngine, AuditRequest, DetectorSpec, ShadowZooRegistry};
use bprom_suite::bprom::{build_suspicious_zoo, BpromConfig, ZooConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::TrainConfig;
use bprom_suite::obs;
use bprom_suite::tensor::Rng;
use bprom_suite::verdict::{validate_incident, INCIDENT_SCHEMA_VERSION};
use bprom_suite::vp::PromptTrainConfig;

fn tiny_config(attack: AttackKind) -> BpromConfig {
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.shadow_attack = attack;
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 3,
        cmaes_population: 4,
        ..PromptTrainConfig::default()
    };
    config
}

#[test]
fn marketplace_screen_shares_fits_and_emits_schema_valid_incident() {
    let session = obs::Session::begin("mlaas_audit_test");

    // The marketplace: two vendors ship two models each (one honest, one
    // trojaned), with attacks the detectors did *not* train on. Each
    // vendor's zoo trains from its own fixed seed so a rebuild is
    // bit-identical (training is deterministic).
    let vendor_zoo = |attack: AttackKind, seed: u64| {
        let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, attack);
        zoo_cfg.clean = 1;
        zoo_cfg.backdoored = 1;
        zoo_cfg.samples_per_class = 20;
        zoo_cfg.train = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        build_suspicious_zoo(&zoo_cfg, &mut Rng::new(seed)).unwrap()
    };
    let mut marketplace = vendor_zoo(AttackKind::Blend, 77);
    marketplace.extend(vendor_zoo(AttackKind::Dynamic, 78));
    assert_eq!(marketplace.len(), 4);

    // Two detector specs screen the queue: a BadNets-trained and a
    // Trojan-trained shadow zoo, each named by three of the six
    // requests. Under a naive engine that would be six fits; the
    // registry owes exactly two.
    let spec_badnets = DetectorSpec::new(tiny_config(AttackKind::BadNets), 7);
    let spec_trojan = DetectorSpec::new(tiny_config(AttackKind::Trojan), 7);
    assert_ne!(spec_badnets.digest(), spec_trojan.digest());
    let mut queue = Vec::new();
    for (i, suspicious) in marketplace.into_iter().enumerate() {
        let spec = if i % 2 == 0 {
            spec_badnets.clone()
        } else {
            spec_trojan.clone()
        };
        queue.push(AuditRequest::from_suspicious(
            format!("upload-{i}"),
            suspicious,
            10,
            spec,
            100 + i as u64,
        ));
    }
    // A second opinion on the first vendor's uploads from the *other*
    // zoo — repeats of both specs, and repeat fingerprints for
    // correlation (the rebuilt models are bit-identical).
    for (i, suspicious) in vendor_zoo(AttackKind::Blend, 77).into_iter().enumerate() {
        let spec = if i % 2 == 0 {
            spec_trojan.clone()
        } else {
            spec_badnets.clone()
        };
        queue.push(AuditRequest::from_suspicious(
            format!("upload-{i}-recheck"),
            suspicious,
            10,
            spec,
            200 + i as u64,
        ));
    }
    assert_eq!(queue.len(), 6);

    let engine = AuditEngine::new("mlaas-screen", ShadowZooRegistry::in_memory());
    let fleet = engine.run(queue).unwrap();

    // Queue-ordered outcomes, one per upload.
    assert_eq!(fleet.len(), 6);
    let labels: Vec<&str> = fleet.outcomes.iter().map(|o| o.label.as_str()).collect();
    assert_eq!(
        labels,
        [
            "upload-0",
            "upload-1",
            "upload-2",
            "upload-3",
            "upload-0-recheck",
            "upload-1-recheck",
        ]
    );

    // Shadow training ran once per registry key: two fits serve six
    // audits, and the four repeat lookups were memory hits.
    assert_eq!(fleet.registry.builds, 2);
    assert_eq!(fleet.registry.mem_hits, 4);
    let snapshot = session.finish();
    assert_eq!(
        snapshot.count_spans("shadow_training"),
        2,
        "no duplicate shadow training for shared keys"
    );

    // The rechecks correlated with their originals: 6 audits over 4
    // distinct fingerprints, the rechecked ones holding 2 audits each.
    assert_eq!(fleet.incident.audits, 6);
    assert_eq!(fleet.incident.incidents.len(), 4);
    let repeat_audits: Vec<u64> = fleet
        .incident
        .incidents
        .iter()
        .map(|m| m.audits)
        .filter(|&n| n > 1)
        .collect();
    assert_eq!(repeat_audits, [2, 2]);

    // The fleet incident document is schema-valid, byte-for-byte as the
    // engine serializes it.
    let text = fleet.incident.to_json_string();
    let doc = obs::Value::parse(&text).unwrap();
    validate_incident(&doc).unwrap();
    assert_eq!(fleet.incident.schema_version, INCIDENT_SCHEMA_VERSION);

    // The human-facing render names the fleet and every audited model.
    let rendered = fleet.render();
    assert!(rendered.contains("mlaas-screen"), "{rendered}");
    for outcome in &fleet.outcomes {
        assert!(rendered.contains(&outcome.model), "{rendered}");
    }
}
