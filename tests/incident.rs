//! Golden incident-report suite: the machine-readable `incident.json`
//! emitted by the verdict pipeline is pinned as checked-in fixtures for
//! three seeds × two response modes over a two-model zoo:
//!
//! - a **clean** suspicious model behind a well-behaved oracle — its
//!   incident is the empty-findings baseline (no flag in either mode);
//! - a **BadNets**-backdoored model behind the hostile stack (transient
//!   faults + quantized responses + retries) with a small client-side
//!   memo cache — its incident carries at least three distinct stable
//!   rule IDs, and strict mode flags or quarantines it while learning
//!   mode records the identical evidence without enforcement.
//!
//! Everything feeding the incident (fingerprints, findings, evidence
//! values, tallies) is deterministic, so the fixtures are byte-identical
//! across `BPROM_THREADS` and `BPROM_QCACHE` settings — the runs pin
//! `CacheConfig` on both the detector and the client-side cache, and the
//! incident schema carries no wall-clock fields. Regenerate after an
//! *intentional* behavior change with:
//!
//! ```text
//! BPROM_BLESS=1 cargo test --test incident
//! ```

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{
    build_suspicious_zoo, evaluate_detector_via, Bprom, BpromConfig, CacheConfig, DetectionReport,
    OracleRegime, ZooConfig,
};
use bprom_suite::data::SynthDataset;
use bprom_suite::faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_suite::nn::TrainConfig;
use bprom_suite::qcache::CachingOracle;
use bprom_suite::tensor::Rng;
use bprom_suite::verdict::{validate_incident, Action, IncidentReport, Mode, RuleId, RulePolicy};
use bprom_suite::vp::PromptTrainConfig;
use std::cell::Cell;
use std::path::PathBuf;

fn fixture_path(mode: Mode, seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("incident_{}_seed_{seed}.json", mode.as_str()))
}

/// Rule thresholds pinned for the fixture runs. Substrate-scale audits
/// produce weaker score/accuracy separation than paper scale, so the
/// fixture calibrates the cut points to the pinned pipeline (the same
/// way `golden_report` pins its cache policy): semantics are unchanged,
/// only where the lines sit.
fn fixture_policy() -> RulePolicy {
    RulePolicy {
        accuracy_collapse: 0.30,
        suspicion_score: 0.5,
        strong_vote_margin: 0.2,
        max_fault_rate: 0.0005,
    }
}

/// One pinned audit run: a detector fitted at golden-fixture scale over
/// a {clean, BadNets} zoo. The clean model (audited first) answers
/// through a plain oracle; the backdoored model answers through the
/// hostile stack plus a 64-entry client-side memo cache (small enough to
/// evict, exercising the cache-anomaly rule).
fn fixture_report(seed: u64) -> DetectionReport {
    // The hostile leg toggles the process-global worker-count override;
    // serialize the seed runs so one run's restore cannot race another's
    // pinned single-worker inspection.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::new(seed);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    // Pin everything the CI matrix varies: the cache policy (one leg sets
    // BPROM_QCACHE), the response mode (the incident legs set BPROM_MODE),
    // and the oracle regime (the regimes job sets BPROM_ORACLE_REGIME),
    // so the fixture bytes cannot depend on the environment.
    config.cache = CacheConfig::unbounded();
    config.mode = Mode::Strict;
    config.regime = OracleRegime::FullScores;
    config.policy = fixture_policy();
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    // The clean provider model is trained harder than the backdoored
    // one: a competent clean service keeps measurable prompted accuracy,
    // while the BadNets model's poisoned target subspace collapses it —
    // which is exactly the separation rule B001 encodes.
    let mut clean_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    clean_cfg.clean = 1;
    clean_cfg.backdoored = 0;
    clean_cfg.samples_per_class = 40;
    clean_cfg.train = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let mut zoo = build_suspicious_zoo(&clean_cfg, &mut rng).unwrap();
    let mut bad_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    bad_cfg.clean = 0;
    bad_cfg.backdoored = 1;
    bad_cfg.samples_per_class = 20;
    bad_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    zoo.extend(build_suspicious_zoo(&bad_cfg, &mut rng).unwrap());

    let audit_index = Cell::new(0usize);
    evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
        let i = audit_index.get();
        audit_index.set(i + 1);
        if i == 0 {
            // Zoo order is clean-first: the clean model's provider is
            // well behaved.
            detector.inspect(&oracle, rng)
        } else {
            // Bounded-LRU eviction and hit tallies are arrival-ordered
            // (the qcache equivalence suite scrubs them across its
            // matrix for the same reason), so the hostile leg pins a
            // single worker to keep the pinned evidence bytes
            // schedule-independent at any BPROM_THREADS setting.
            bprom_suite::par::set_thread_count(1);
            let plan = Stack(vec![
                Box::new(Transient { rate: 0.25 }),
                Box::new(Quantize { decimals: 3 }),
            ]);
            let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            let memo = CachingOracle::new(retrying, CacheConfig::lru(64));
            let verdict = detector.inspect(&memo, rng);
            bprom_suite::par::set_thread_count(0);
            verdict
        }
    })
    .unwrap()
}

fn diff_lines(want: &str, got: &str) -> Option<String> {
    if want == got {
        return None;
    }
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    let mut out = String::new();
    for i in 0..want_lines.len().max(got_lines.len()) {
        let w = want_lines.get(i).copied().unwrap_or("<missing>");
        let g = got_lines.get(i).copied().unwrap_or("<missing>");
        if w != g {
            out.push_str(&format!("  line {}:\n    -{w}\n    +{g}\n", i + 1));
        }
    }
    Some(out)
}

fn assert_matches(mode: Mode, seed: u64, got: &str) {
    let path = fixture_path(mode, seed);
    if std::env::var("BPROM_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing incident fixture {} ({e}); regenerate with \
             BPROM_BLESS=1 cargo test --test incident",
            path.display()
        )
    });
    if let Some(diff) = diff_lines(&want, got) {
        panic!(
            "incident report {}/seed {seed} drifted from {} \
             (-fixture / +current):\n{diff}\
             If the change is intentional, re-bless with \
             BPROM_BLESS=1 cargo test --test incident",
            mode.as_str(),
            path.display()
        );
    }
}

fn check_seed(seed: u64) {
    let policy = fixture_policy();
    let report = fixture_report(seed);
    let strict = report.incident("incident-fixture", &policy, Mode::Strict);
    let learning = report.incident("incident-fixture", &policy, Mode::Learning);

    // Incidents are grouped in first-audit order: clean model, then the
    // backdoored one.
    assert_eq!(strict.audits, 2);
    assert_eq!(strict.incidents.len(), 2);
    let clean = &strict.incidents[0];
    let bad = &strict.incidents[1];

    // The clean model's audit is the empty-findings baseline.
    assert!(
        clean.findings.is_empty(),
        "clean audit raised findings: {:?}",
        clean.findings
    );
    assert_eq!(clean.action, Action::None);

    // The backdoored model raises at least three distinct rule IDs and
    // draws an enforcement action in strict mode.
    let rules: Vec<RuleId> = bad.findings.iter().map(|c| c.finding.rule).collect();
    assert!(
        rules.len() >= 3,
        "backdoored audit must raise >= 3 distinct rules, got {rules:?}"
    );
    assert!(
        matches!(bad.action, Action::Flag | Action::Quarantine),
        "strict mode must flag or quarantine, got {:?}",
        bad.action
    );
    assert!(strict.flagged + strict.quarantined >= 1);

    // Learning mode records the identical evidence — it only withholds
    // the enforcement action (no verdict flip between modes).
    assert_eq!(
        learning.incidents[1].findings, bad.findings,
        "learning mode must not change the findings"
    );
    assert_eq!(learning.flagged, 0);
    assert_eq!(learning.quarantined, 0);
    assert_eq!(learning.incidents[0].action, Action::None);
    assert_eq!(learning.incidents[1].action, Action::Record);

    // Both emitted documents satisfy the schema validator and are
    // byte-stable against the checked-in fixtures.
    for (mode, incident) in [(Mode::Strict, &strict), (Mode::Learning, &learning)] {
        let text = incident.to_json_string();
        let doc = bprom_suite::obs::json::Value::parse(&text).unwrap();
        validate_incident(&doc).unwrap_or_else(|errs| {
            panic!(
                "{}/seed {seed} failed schema validation: {errs:?}",
                mode.as_str()
            )
        });
        assert_matches(mode, seed, &text);
    }
}

#[test]
fn incident_seed_42() {
    check_seed(42);
}

#[test]
fn incident_seed_1337() {
    check_seed(1337);
}

#[test]
fn incident_seed_2024() {
    check_seed(2024);
}

/// The committed fixtures parse back through the typed API, round-trip
/// byte-for-byte, and carry the pinned schema version.
#[test]
fn fixtures_round_trip_and_validate() {
    for seed in [42u64, 1337, 2024] {
        for mode in [Mode::Strict, Mode::Learning] {
            let path = fixture_path(mode, seed);
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing incident fixture {} ({e}); regenerate with \
                     BPROM_BLESS=1 cargo test --test incident",
                    path.display()
                )
            });
            let report = IncidentReport::from_json_str(&text).unwrap();
            assert_eq!(
                report.schema_version,
                bprom_suite::verdict::INCIDENT_SCHEMA_VERSION
            );
            assert_eq!(report.to_json_string(), text);
            let doc = bprom_suite::obs::json::Value::parse(&text).unwrap();
            validate_incident(&doc).unwrap();
        }
    }
}
