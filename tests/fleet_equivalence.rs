//! Fleet-equivalence contract of the audit engine (`bprom-audit`): with
//! cache sharing off, a fleet audit of N requests is **byte-identical**
//! to N independent single-model runs of the same (model, spec, seed)
//! triples — same signals, same findings, same `incident.json` bytes —
//! at any thread count, any cache mode, hostile oracle stacks included.
//! The registry may only change *when* shadow training is paid, never
//! what any audit concludes.
//!
//! Tier 1 runs one fast leg (default threads, unbounded cache, plain
//! oracle). The full thread count × cache mode × oracle-hostility matrix
//! is `#[ignore]`d and run by the tier-2 CI job
//! (`cargo test -q --workspace -- --ignored`).

use bprom_suite::attacks::AttackKind;
use bprom_suite::audit::{AuditEngine, AuditRequest, DetectorSpec, FleetReport, ShadowZooRegistry};
use bprom_suite::bprom::{
    build_suspicious_zoo, Bprom, BpromConfig, CacheConfig, Verdict, ZooConfig,
};
use bprom_suite::data::SynthDataset;
use bprom_suite::faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_suite::nn::TrainConfig;
use bprom_suite::par;
use bprom_suite::qcache::CachingOracle;
use bprom_suite::tensor::Rng;
use bprom_suite::verdict::{AuditRecord, IncidentReport, Mode, RulePolicy};
use bprom_suite::vp::{PromptTrainConfig, QueryOracle};
use std::sync::Mutex;

/// Serializes the tier-2 matrix with any other test that flips the
/// process-global worker-pool size.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

const FIT_SEED: u64 = 7;
const ZOO_SEED: u64 = 99;
const FLEET_LABEL: &str = "fleet-equivalence";

fn tiny_config(cache: CacheConfig) -> BpromConfig {
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 3,
        cmaes_population: 4,
        ..PromptTrainConfig::default()
    };
    config.cache = cache;
    config
}

/// The fleet's suspicious models: one clean + one backdoored, trained
/// deterministically from `ZOO_SEED` so every rebuild is bit-identical.
fn marketplace() -> Vec<bprom_suite::bprom::SuspiciousModel> {
    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 20;
    zoo_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    build_suspicious_zoo(&zoo_cfg, &mut Rng::new(ZOO_SEED)).unwrap()
}

/// The audit queue: both marketplace models, plus a *repeat* upload of
/// the first one (same weights, same inspection seed) so the incident
/// report exercises fingerprint correlation.
fn queue(config: &BpromConfig) -> Vec<AuditRequest> {
    let spec = DetectorSpec::new(config.clone(), FIT_SEED);
    let mut models = marketplace();
    let repeat = marketplace().remove(0);
    let second = models.remove(1);
    let first = models.remove(0);
    vec![
        AuditRequest::from_suspicious("m0", first, 10, spec.clone(), 11),
        AuditRequest::from_suspicious("m1", second, 10, spec.clone(), 12),
        AuditRequest::from_suspicious("m0-repeat", repeat, 10, spec, 11),
    ]
}

/// The inspection path both sides of the comparison share: plain, or a
/// hostile retry → faults stack over the sealed cached oracle.
fn inspect(
    hostile: bool,
    detector: &Bprom,
    oracle: &CachingOracle<QueryOracle>,
    rng: &mut Rng,
) -> bprom_suite::bprom::Result<Verdict> {
    if !hostile {
        return detector.inspect(oracle, rng);
    }
    let plan = Stack(vec![
        Box::new(Transient { rate: 0.1 }),
        Box::new(Quantize { decimals: 3 }),
    ]);
    let faulty = FaultyOracle::new(oracle, plan, 0xFA17);
    let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
    detector.inspect(&retrying, rng)
}

/// N independent single-model runs: no engine, no registry — each audit
/// seals its own fresh cached oracle and consumes its own freshly seeded
/// RNG, exactly as a standalone inspection would. The detector fit is
/// shared only because fitting is deterministic per (config, seed); a
/// per-run refit would produce bit-identical weights.
fn independent_runs(config: &BpromConfig, hostile: bool) -> (Vec<AuditRecord>, IncidentReport) {
    let detector = Bprom::fit(config, &mut Rng::new(FIT_SEED)).unwrap();
    let policy = RulePolicy::default();
    let mut records = Vec::new();
    for request in queue(config) {
        let fingerprint = bprom_suite::bprom::model_fingerprint(&request.model);
        let oracle = CachingOracle::new(
            QueryOracle::new(request.model, request.num_classes),
            config.cache,
        );
        let verdict = inspect(
            hostile,
            &detector,
            &oracle,
            &mut Rng::new(request.inspect_seed),
        )
        .unwrap();
        records.push(AuditRecord {
            model: fingerprint,
            regime: config.regime.as_wire(),
            scenario: "downstream".to_string(),
            signals: verdict.signals(),
            findings: verdict.findings(&policy),
        });
    }
    let incident = IncidentReport::assemble(FLEET_LABEL, &policy, Mode::Strict, &records);
    (records, incident)
}

/// One fleet run through the engine (fresh in-memory registry, cache
/// sharing off) under the currently installed thread count.
fn fleet_run(config: &BpromConfig, hostile: bool) -> FleetReport {
    let engine = AuditEngine::new(FLEET_LABEL, ShadowZooRegistry::in_memory());
    engine
        .run_with(queue(config), |detector, oracle, rng| {
            inspect(hostile, detector, oracle, rng)
        })
        .unwrap()
}

fn assert_fleet_matches(
    fleet: &FleetReport,
    records: &[AuditRecord],
    incident: &IncidentReport,
    context: &str,
) {
    assert_eq!(fleet.outcomes.len(), records.len(), "{context}");
    for (outcome, record) in fleet.outcomes.iter().zip(records) {
        // Byte-identical per audit: fingerprint, every signal (cache
        // tallies included — sharing is off, so each audit sealed a
        // fresh cache just like the independent run), every finding.
        assert_eq!(&outcome.record, record, "{context}");
    }
    assert_eq!(
        fleet.incident.to_json_string(),
        incident.to_json_string(),
        "{context}: incident.json must be byte-identical"
    );
    // One fit served the whole fleet.
    assert_eq!(fleet.registry.builds, 1, "{context}");
    assert_eq!(fleet.registry.mem_hits, 2, "{context}");
}

/// Tier-1 fast leg: default thread count, unbounded cache, plain oracle.
#[test]
fn fleet_matches_independent_runs() {
    let config = tiny_config(CacheConfig::unbounded());
    let (records, incident) = independent_runs(&config, false);
    let fleet = fleet_run(&config, false);
    assert_fleet_matches(&fleet, &records, &incident, "tier-1 leg");

    // The repeat audit correlated: two audits of one fingerprint.
    assert_eq!(fleet.incident.audits, 3);
    assert_eq!(fleet.incident.incidents.len(), 2);
    assert_eq!(fleet.incident.incidents[0].audits, 2);
}

/// Tier-2: threads {1, 4} × cache {off, unbounded} × {plain, hostile} —
/// every fleet run byte-identical to the independent baseline of its
/// cache/hostility cell, independent of the thread count.
#[test]
#[ignore = "tier-2 fleet matrix (8 full runs); CI runs it via -- --ignored"]
fn full_matrix_is_byte_identical() {
    let _guard = THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    for hostile in [false, true] {
        for cache in [CacheConfig::off(), CacheConfig::unbounded()] {
            let config = tiny_config(cache);
            let (records, incident) = independent_runs(&config, hostile);
            for threads in [1usize, 4] {
                par::set_thread_count(threads);
                let fleet = fleet_run(&config, hostile);
                par::set_thread_count(0);
                assert_fleet_matches(
                    &fleet,
                    &records,
                    &incident,
                    &format!("hostile={hostile} cache={cache:?} threads={threads}"),
                );
                if hostile {
                    let faults: u64 = fleet
                        .outcomes
                        .iter()
                        .map(|o| o.record.signals.faults_injected)
                        .sum();
                    assert!(faults > 0, "hostile stack must actually inject");
                }
            }
        }
    }
}
