//! Degradation curve of the detector under hostile oracles: the verdict
//! must survive the fault regimes a real MLaaS endpoint exhibits.
//!
//! * Transient drops behind a retry layer deliver bit-identical
//!   responses, so scores (and the logical query budget) are
//!   bit-identical to the fault-free run — and the absorbed faults are
//!   visible in the verdict budget and the telemetry counters.
//! * Quantized (2-decimal) and top-k (k = 3) responses perturb the
//!   CMA-ES trajectory but must not flip the decision on either the
//!   clean or the backdoored fixture.
//!
//! At this test's miniature scale the meta-forest's scores are coarse
//! and sit near 0.5, so decisions are taken at a threshold calibrated on
//! the fault-free scores (the midpoint between the clean and backdoored
//! baseline — exactly what [`DetectionReport::best_threshold`] does for
//! deployments). The contract under test is that no fault regime moves
//! either model across that margin.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{build_suspicious_zoo, Bprom, BpromConfig, Verdict, ZooConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::faults::{
    with_env_profile, FaultyOracle, Quantize, RetryPolicy, RetryingOracle, TopK, Transient,
};
use bprom_suite::nn::TrainConfig;
use bprom_suite::obs;
use bprom_suite::tensor::Rng;
use bprom_suite::vp::{BlackBoxModel, PromptTrainConfig, QueryOracle};

fn tiny_config() -> BpromConfig {
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 3,
        cmaes_generations: 5,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    config
}

/// Every inspection below uses a fresh, identically-seeded generator so
/// the only difference between legs is the oracle stack itself.
fn inspect(detector: &Bprom, oracle: &dyn BlackBoxModel) -> Verdict {
    let mut rng = Rng::new(7);
    detector.inspect(oracle, &mut rng).unwrap()
}

#[test]
#[ignore = "tier-2 degradation sweep (fit + zoo + 9 inspections); CI runs it via -- --ignored"]
fn verdicts_survive_hostile_oracles() {
    let mut rng = Rng::new(4321);
    let config = tiny_config();
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 20;
    zoo_cfg.train = TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    };
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    let num_classes = config.source_dataset.num_classes();
    let fixtures: Vec<(QueryOracle, bool)> = zoo
        .into_iter()
        .map(|s| (QueryOracle::new(s.model, num_classes), s.backdoored))
        .collect();

    // Fault-free baselines, and the threshold they calibrate.
    let baselines: Vec<Verdict> = fixtures
        .iter()
        .map(|(oracle, _)| inspect(&detector, oracle))
        .collect();
    for baseline in &baselines {
        assert!(!baseline.budget.degraded());
    }
    let clean_score = baselines[fixtures.iter().position(|f| !f.1).unwrap()].score;
    let backdoored_score = baselines[fixtures.iter().position(|f| f.1).unwrap()].score;
    assert!(
        backdoored_score > clean_score,
        "baseline must separate the fixtures ({backdoored_score} vs {clean_score})"
    );
    let threshold = (clean_score + backdoored_score) / 2.0;
    let decide = |score: f32| score > threshold;

    for ((oracle, _), baseline) in fixtures.iter().zip(&baselines) {
        // --- Transient drops absorbed by retries: bit-identical run. ---
        let session = obs::Session::begin("fault-tolerance");
        let faulty = FaultyOracle::new(oracle, Transient { rate: 0.05 }, 0xFA01);
        let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
        let transient = inspect(&detector, &retrying);
        let snapshot = session.finish();
        assert_eq!(transient.score, baseline.score);
        // Retries are invisible to the logical query budget.
        assert_eq!(transient.queries, baseline.queries);
        assert_eq!(
            transient.budget.prompt_queries,
            baseline.budget.prompt_queries
        );
        // ...but the absorbed hostility is fully accounted.
        assert!(transient.budget.faults_injected > 0);
        assert_eq!(transient.budget.retries, transient.budget.faults_injected);
        assert_eq!(transient.budget.retry_exhausted, 0);
        assert_eq!(transient.budget.penalized_candidates, 0);
        assert!(transient.budget.backoff_virtual_ms >= transient.budget.retries * 50);
        // Acceptance criterion: telemetry sees the retries and faults.
        assert!(snapshot.counter("oracle.retries") > 0);
        assert!(snapshot.counter("oracle.faults_injected") > 0);
        assert_eq!(snapshot.counter("oracle.retries"), transient.budget.retries);
        assert_eq!(
            snapshot.counter("oracle.faults_injected"),
            transient.budget.faults_injected
        );

        // --- Quantized responses: decision unchanged. ---
        let quantizing = FaultyOracle::new(oracle, Quantize { decimals: 2 }, 0xFA02);
        let quantized = inspect(&detector, &quantizing);
        assert_eq!(
            decide(quantized.score),
            decide(baseline.score),
            "Quantize{{2}} flipped the verdict ({} vs baseline {})",
            quantized.score,
            baseline.score
        );
        assert!(quantized.budget.degraded_responses > 0);
        assert_eq!(quantized.budget.faults_injected, 0);

        // --- Top-k truncated responses: decision unchanged. ---
        let truncating = FaultyOracle::new(oracle, TopK { k: 3 }, 0xFA03);
        let truncated = inspect(&detector, &truncating);
        assert_eq!(
            decide(truncated.score),
            decide(baseline.score),
            "TopK{{3}} flipped the verdict ({} vs baseline {})",
            truncated.score,
            baseline.score
        );
        assert!(truncated.budget.degraded_responses > 0);

        // --- Env-selected profile (exercised for real by the hostile CI
        // job, a passthrough otherwise): decision unchanged. ---
        let profiled = with_env_profile(oracle, 0xFA04, |o| inspect(&detector, o));
        assert_eq!(
            decide(profiled.score),
            decide(baseline.score),
            "env fault profile flipped the verdict ({} vs baseline {})",
            profiled.score,
            baseline.score
        );
    }
}
