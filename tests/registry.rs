//! Property tests for the shadow-zoo registry (`bprom-audit`): content
//! addressing over the operator's (dataset, arch, attack, seed) space
//! never collides, same-spec lookups always hit the shared entry, and a
//! damaged persisted snapshot — truncated, bit-flipped, overwritten with
//! garbage, or holding a foreign configuration's payload — degrades to a
//! typed-error rebuild, never a panic and never a wrong detector.

use bprom_suite::attacks::AttackKind;
use bprom_suite::audit::{DetectorSpec, ShadowZooRegistry};
use bprom_suite::bprom::BpromConfig;
use bprom_suite::ckpt::SnapshotStore;
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::Architecture;
use bprom_suite::nn::TrainConfig;
use bprom_suite::vp::PromptTrainConfig;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_config() -> BpromConfig {
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 3,
        cmaes_population: 4,
        ..PromptTrainConfig::default()
    };
    config
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bprom-registry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Exhaustive sweep of the operator tuple space (5 datasets × 5 archs ×
/// 7 attacks × 3 seeds = 525 specs): every tuple gets a distinct digest,
/// a distinct well-formed snapshot name, and a faithful display key.
/// Digesting is pure computation — no fitting happens here.
#[test]
fn distinct_operator_tuples_never_collide() {
    let datasets = [
        SynthDataset::Cifar10,
        SynthDataset::Gtsrb,
        SynthDataset::Stl10,
        SynthDataset::Svhn,
        SynthDataset::Cifar100,
    ];
    let archs = [
        Architecture::ResNetMini,
        Architecture::MobileNetMini,
        Architecture::VitMini,
        Architecture::SwinMini,
        Architecture::Mlp,
    ];
    let attacks = [
        AttackKind::BadNets,
        AttackKind::Blend,
        AttackKind::Trojan,
        AttackKind::WaNet,
        AttackKind::Dynamic,
        AttackKind::AdapBlend,
        AttackKind::AdapPatch,
    ];
    let mut digests = HashMap::new();
    let mut names = HashSet::new();
    let mut specs = 0u64;
    for &dataset in &datasets {
        for &arch in &archs {
            for &attack in &attacks {
                for seed in [0u64, 7, u64::MAX] {
                    let mut config = tiny_config();
                    config.source_dataset = dataset;
                    config.architecture = arch;
                    config.shadow_attack = attack;
                    let spec = DetectorSpec::new(config, seed);
                    let key = spec.key();
                    assert_eq!(
                        (key.dataset, key.arch, key.attack, key.seed),
                        (dataset, arch, attack, seed),
                        "key reflects the operator tuple"
                    );
                    if let Some(prior) = digests.insert(spec.digest(), key) {
                        panic!("digest collision: {prior} vs {key}");
                    }
                    let name = spec.snapshot_name();
                    assert_eq!(name.len(), "det-".len() + 16, "{name}");
                    assert!(name.starts_with("det-"), "{name}");
                    assert!(
                        name["det-".len()..].bytes().all(|b| b.is_ascii_hexdigit()),
                        "{name}"
                    );
                    assert!(names.insert(name), "snapshot name collision");
                    specs += 1;
                }
            }
        }
    }
    assert_eq!(specs, 525);
    assert_eq!(digests.len(), 525);
}

/// Same-tuple lookups always hit: across two distinct specs and repeated
/// interleaved lookups, each spec is fitted exactly once and every later
/// lookup returns the *same* shared allocation.
#[test]
fn same_tuple_always_hits_the_shared_entry() {
    let registry = ShadowZooRegistry::in_memory();
    let spec_a = DetectorSpec::new(tiny_config(), 7);
    let mut off_tuple = tiny_config();
    off_tuple.probe_count += 1;
    // Same display tuple as `spec_a`, different content — must not share.
    let spec_b = DetectorSpec::new(off_tuple, 7);
    assert_eq!(spec_a.key(), spec_b.key());

    let first_a = registry.detector(&spec_a).unwrap();
    let first_b = registry.detector(&spec_b).unwrap();
    assert!(!Arc::ptr_eq(&first_a, &first_b));
    for _ in 0..3 {
        assert!(Arc::ptr_eq(&first_a, &registry.detector(&spec_a).unwrap()));
        assert!(Arc::ptr_eq(&first_b, &registry.detector(&spec_b).unwrap()));
    }
    let stats = registry.stats();
    assert_eq!(stats.builds, 2, "one fit per distinct content");
    assert_eq!(stats.mem_hits, 6, "every repeat lookup hit");
    assert_eq!(stats.rebuilds, 0);
    assert_eq!(registry.len(), 2);
}

/// Damage matrix: truncation, a flipped payload byte, and garbage that
/// keeps a plausible length all surface as typed checkpoint errors, are
/// absorbed as rebuilds, and the re-fitted entry is persisted again so
/// the *next* process gets a clean disk hit.
#[test]
fn damaged_snapshots_rebuild_instead_of_panicking() {
    let dir = scratch_dir("damage");
    let spec = DetectorSpec::new(tiny_config(), 7);
    ShadowZooRegistry::open(&dir)
        .unwrap()
        .detector(&spec)
        .unwrap();

    type Corruptor = fn(&[u8]) -> Vec<u8>;
    let damage: [(&str, Corruptor); 3] = [
        ("truncated", |bytes| bytes[..bytes.len() / 2].to_vec()),
        ("bit-flipped", |bytes| {
            let mut copy = bytes.to_vec();
            let mid = copy.len() / 2;
            copy[mid] ^= 0x40;
            copy
        }),
        ("garbage", |bytes| vec![0xA5; bytes.len()]),
    ];
    for (label, corrupt) in damage {
        let store = SnapshotStore::open(&dir).unwrap();
        let path = store.latest_path(&spec.snapshot_name()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, corrupt(&bytes)).unwrap();

        let registry = ShadowZooRegistry::open(&dir).unwrap();
        let detector = registry.detector(&spec).unwrap();
        assert_eq!(detector.config(), &spec.config, "{label}");
        let stats = registry.stats();
        assert_eq!(stats.rebuilds, 1, "{label}: damage absorbed as rebuild");
        assert_eq!(stats.builds, 1, "{label}: re-fitted once");
        assert_eq!(stats.disk_hits, 0, "{label}");

        // The rebuild re-persisted: a fresh process restores cleanly.
        let healed = ShadowZooRegistry::open(&dir).unwrap();
        healed.detector(&spec).unwrap();
        assert_eq!(healed.stats().disk_hits, 1, "{label}: healed on disk");
        assert_eq!(healed.stats().builds, 0, "{label}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot holding a *different* configuration's payload (same
/// operator tuple, off-tuple config drift) is rejected by the restore
/// fingerprint check and rebuilt — content addressing is enforced on
/// read, not just on write.
#[test]
fn foreign_config_payloads_are_rejected_and_rebuilt() {
    let dir = scratch_dir("foreign");
    let spec = DetectorSpec::new(tiny_config(), 7);
    let mut off_tuple = tiny_config();
    off_tuple.probe_count += 1;
    let foreign = DetectorSpec::new(off_tuple, 7);
    assert_eq!(spec.key(), foreign.key());

    // Persist `spec`'s fit, then graft its payload under `foreign`'s name.
    ShadowZooRegistry::open(&dir)
        .unwrap()
        .detector(&spec)
        .unwrap();
    let store = SnapshotStore::open(&dir).unwrap();
    let payload = store.load(&spec.snapshot_name()).unwrap().unwrap();
    store.save(&foreign.snapshot_name(), &payload).unwrap();

    let registry = ShadowZooRegistry::open(&dir).unwrap();
    let detector = registry.detector(&foreign).unwrap();
    assert_eq!(detector.config(), &foreign.config);
    let stats = registry.stats();
    assert_eq!(stats.rebuilds, 1, "foreign payload rejected");
    assert_eq!(stats.builds, 1);
    assert_eq!(stats.disk_hits, 0);
    std::fs::remove_dir_all(&dir).ok();
}
