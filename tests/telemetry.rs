//! Cross-crate telemetry integration: a full fit + inspect cycle under a
//! `bprom-obs` session must (a) report a nonzero, *deterministic* oracle
//! query budget, (b) agree between the `Verdict` tally and the session
//! counters, and (c) produce a JSON snapshot that round-trips.

use bprom_suite::bprom::{Bprom, BpromConfig, Verdict};
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::{build, ModelSpec};
use bprom_suite::nn::{TrainConfig, Trainer};
use bprom_suite::obs::{self, TelemetrySnapshot};
use bprom_suite::tensor::Rng;
use bprom_suite::vp::{PromptTrainConfig, QueryOracle};

fn tiny_config() -> BpromConfig {
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 3,
        cmaes_generations: 5,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    config
}

/// One identically-seeded fit + inspect run under a recording session.
fn run_once() -> (Verdict, TelemetrySnapshot) {
    let mut rng = Rng::new(1234);
    let config = tiny_config();
    let session = obs::Session::begin("telemetry-integration");
    let detector = Bprom::fit(&config, &mut rng).unwrap();
    let source = SynthDataset::Cifar10.generate(10, 16, 5).unwrap();
    let mut model = build(config.architecture, &ModelSpec::new(3, 16, 10), &mut rng).unwrap();
    Trainer::new(config.train)
        .fit(&mut model, &source.images, &source.labels, &mut rng)
        .unwrap();
    let oracle = QueryOracle::new(model, 10);
    let verdict = detector.inspect(&oracle, &mut rng).unwrap();
    (verdict, session.finish())
}

#[test]
fn query_budget_is_deterministic_and_fully_accounted() {
    let (v1, s1) = run_once();
    let (v2, s2) = run_once();

    // Nonzero, deterministic budget: identical seeds spend identical
    // queries and reach the identical verdict.
    assert!(v1.queries > 0);
    assert_eq!(v1.queries, v2.queries);
    assert_eq!(v1.score, v2.score);
    assert_eq!(v1.backdoored, v2.backdoored);
    assert_eq!(v1.budget.prompt_queries, v2.budget.prompt_queries);
    assert_eq!(v1.budget.probe_queries, v2.budget.probe_queries);
    assert_eq!(v1.budget.total_queries(), v1.queries);

    // The session counters agree with the verdict's own tally.
    assert_eq!(s1.counter("oracle.queries"), v1.queries);
    assert_eq!(s2.counter("oracle.queries"), v2.queries);
    assert_eq!(s1.counter("inspect.models"), 1);

    // The pipeline phases all left spans, nested as in the code.
    let fit = s1.find_span("fit").expect("fit span");
    assert!(fit.find("shadow_training").is_some());
    assert!(fit.find("prompt_shadows").is_some());
    assert!(fit.find("train_meta").is_some());
    let inspect = s1.find_span("inspect").expect("inspect span");
    assert!(inspect.find("prompt_suspicious").is_some());
    assert!(inspect.find("probe_features").is_some());
    assert!(inspect.find("meta_predict").is_some());

    // Oracle latency histogram saw every batch.
    let hist = s1.histograms.get("oracle.query_ns").expect("query hist");
    assert!(hist.count() > 0);

    // The snapshot round-trips through its JSON form.
    let json = s1.to_json_string();
    let back = TelemetrySnapshot::from_json_str(&json).unwrap();
    assert_eq!(back.counter("oracle.queries"), v1.queries);
    assert_eq!(back.label, s1.label);
    assert!(back.find_span("inspect").is_some());
}
