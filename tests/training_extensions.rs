//! Integration of the training extensions: augmentation, optimizer
//! selection and LR schedules compose with the core training loop.

use bprom_suite::data::{Augment, SynthDataset};
use bprom_suite::nn::models::{mlp, ModelSpec};
use bprom_suite::nn::{LrSchedule, OptimizerKind, TrainConfig, Trainer};
use bprom_suite::tensor::Rng;

#[test]
fn augmented_training_still_learns() {
    let mut rng = Rng::new(0);
    let data = SynthDataset::Cifar10.generate(20, 16, 1).unwrap();
    let (train, test) = data.split(0.8, &mut rng).unwrap();
    let aug = Augment::default();
    let augmented = aug.apply_batch(&train.images, &mut rng).unwrap();
    let spec = ModelSpec::new(3, 16, 10);
    let mut model = mlp(&spec, &mut rng).unwrap();
    let trainer = Trainer::new(TrainConfig::default());
    trainer
        .fit(&mut model, &augmented, &train.labels, &mut rng)
        .unwrap();
    let acc = trainer
        .evaluate(&mut model, &test.images, &test.labels)
        .unwrap();
    assert!(acc > 0.6, "augmented accuracy {acc}");
}

#[test]
fn adam_trains_synthetic_classifier() {
    let mut rng = Rng::new(1);
    let data = SynthDataset::Cifar10.generate(20, 16, 2).unwrap();
    let (train, test) = data.split(0.8, &mut rng).unwrap();
    let spec = ModelSpec::new(3, 16, 10);
    let mut model = mlp(&spec, &mut rng).unwrap();
    let trainer = Trainer::new(TrainConfig {
        optimizer: OptimizerKind::Adam,
        lr: 0.005,
        ..TrainConfig::default()
    });
    trainer
        .fit(&mut model, &train.images, &train.labels, &mut rng)
        .unwrap();
    let acc = trainer
        .evaluate(&mut model, &test.images, &test.labels)
        .unwrap();
    assert!(acc > 0.6, "adam accuracy {acc}");
}

#[test]
fn schedules_compose_with_optimizers() {
    // Drive an SGD training loop manually with a cosine schedule.
    use bprom_suite::nn::loss::softmax_cross_entropy;
    use bprom_suite::nn::{optim::Sgd, Layer, Mode};

    let mut rng = Rng::new(2);
    let data = SynthDataset::Cifar10.generate(10, 16, 3).unwrap();
    let spec = ModelSpec::new(3, 16, 10);
    let mut model = mlp(&spec, &mut rng).unwrap();
    let schedule = LrSchedule::Cosine {
        lr: 0.1,
        min_lr: 0.001,
        total: 10,
    };
    let mut opt = Sgd::new(schedule.at(0), 0.9, 0.0);
    let mut last_loss = f32::INFINITY;
    for epoch in 0..10 {
        opt.set_lr(schedule.at(epoch));
        let logits = model.forward(&data.images, Mode::Train).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &data.labels).unwrap();
        model.zero_grad();
        model.backward(&grad).unwrap();
        opt.step(&mut model).unwrap();
        last_loss = loss;
    }
    let first_logits = model.forward(&data.images, Mode::Eval).unwrap();
    let (final_loss, _) = softmax_cross_entropy(&first_logits, &data.labels).unwrap();
    assert!(final_loss < last_loss + 0.5);
    assert!(
        final_loss < 2.3,
        "loss should be below uniform ln(10): {final_loss}"
    );
}
