//! Cross-crate integration: the mini models must learn the synthetic
//! datasets to high accuracy in a handful of epochs. This is the
//! precondition every BPROM experiment relies on (paper Tables 14/15 show
//! infected/clean accuracy > 0.9 on the real substrate).

use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::{build, Architecture, ModelSpec};
use bprom_suite::nn::{TrainConfig, Trainer};
use bprom_suite::tensor::Rng;

fn train_and_eval(arch: Architecture, seed: u64) -> f32 {
    let mut rng = Rng::new(seed);
    let data = SynthDataset::Cifar10.generate(40, 16, seed).unwrap();
    let (train, test) = data.split(0.8, &mut rng).unwrap();
    let spec = ModelSpec::new(3, 16, 10);
    let mut model = build(arch, &spec, &mut rng).unwrap();
    let trainer = Trainer::new(TrainConfig::default());
    trainer
        .fit(&mut model, &train.images, &train.labels, &mut rng)
        .unwrap();
    trainer
        .evaluate(&mut model, &test.images, &test.labels)
        .unwrap()
}

#[test]
fn resnet_mini_learns_synth_cifar10() {
    let acc = train_and_eval(Architecture::ResNetMini, 1);
    assert!(acc > 0.85, "ResNetMini accuracy {acc}");
}

#[test]
fn mobilenet_mini_learns_synth_cifar10() {
    let acc = train_and_eval(Architecture::MobileNetMini, 2);
    assert!(acc > 0.8, "MobileNetMini accuracy {acc}");
}

#[test]
fn vit_mini_learns_synth_cifar10() {
    let acc = train_and_eval(Architecture::VitMini, 3);
    assert!(acc > 0.7, "VitMini accuracy {acc}");
}

#[test]
fn gtsrb_many_classes_learnable() {
    let mut rng = Rng::new(4);
    let data = SynthDataset::Gtsrb.generate(16, 16, 4).unwrap();
    let (train, test) = data.split(0.8, &mut rng).unwrap();
    let spec = ModelSpec::new(3, 16, 43);
    let mut model = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
    // 12 epochs, not 10: this seed's 10-epoch trajectory lands within
    // rounding of the 0.7 bar (0.696 after the kernel backward-weight
    // reduction-order change); two more epochs restore a wide margin.
    let trainer = Trainer::new(TrainConfig {
        epochs: 12,
        ..TrainConfig::default()
    });
    trainer
        .fit(&mut model, &train.images, &train.labels, &mut rng)
        .unwrap();
    let acc = trainer
        .evaluate(&mut model, &test.images, &test.labels)
        .unwrap();
    assert!(acc > 0.7, "GTSRB accuracy {acc}");
}
