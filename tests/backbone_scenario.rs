//! Property contract of the backbone scenario (`bprom-scenarios`) and the
//! budget-fair trigger-inversion baseline (`bprom-defenses`):
//!
//! 1. **Exact query accounting** — a [`PromptedBackbone`] composite bills
//!    exactly what the naive backbone+prompt forwarding would: `n`
//!    backbone images per `n`-image downstream query, bit-identical
//!    responses included.
//! 2. **Frozen-backbone invariant** — downstream prompt adaptation never
//!    perturbs the backbone: parameters, norm buffers and probe outputs
//!    are byte-identical before and after `train_prompt_backprop`, and a
//!    zoo-built composite's parts still hash to its recorded fingerprint.
//! 3. **Exact budget fence** — the trigger-inversion search never submits
//!    an image that would cross its query budget, even behind a hostile
//!    fault/retry stack, and its billing reconciles to the delivered
//!    query exactly.

use bprom_suite::attacks::AttackKind;
use bprom_suite::data::SynthDataset;
use bprom_suite::defenses::trigger_inversion::{invert_trigger, TriggerInversionConfig};
use bprom_suite::faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_suite::nn::models::{build, mlp, Architecture, ModelSpec};
use bprom_suite::nn::{Layer, Mode, TrainConfig, Trainer};
use bprom_suite::scenarios::{
    build_backbone_zoo, composite_fingerprint, BackboneScenarioConfig, PromptedBackbone,
};
use bprom_suite::tensor::{Rng, Tensor};
use bprom_suite::vp::{
    train_prompt_backprop, BlackBoxModel, LabelMap, PromptStyle, PromptTrainConfig, QueryOracle,
    VisualPrompt,
};

/// A deterministic composite over an MLP backbone: two calls with the
/// same seed build bit-identical systems.
fn composite_for(seed: u64) -> PromptedBackbone {
    let mut rng = Rng::new(seed);
    let model = mlp(&ModelSpec::new(3, 16, 10), &mut rng).unwrap();
    let prompt = VisualPrompt::random(3, 16, 2, &mut rng)
        .unwrap()
        .with_style(PromptStyle::Pad);
    let map = LabelMap::identity(10, 10).unwrap();
    PromptedBackbone::new(QueryOracle::new(model, 10), prompt, map).unwrap()
}

/// Property 1: for any sequence of downstream batches — mixed sizes,
/// mixed resolutions — the composite's query meter equals the image
/// count a naive backbone+prompt pipeline would submit, and its
/// responses are bit-identical to that pipeline's.
#[test]
fn composite_query_counts_match_naive_forwarding_exactly() {
    let system = composite_for(0xBB);

    // The naive leg: an identically-seeded backbone queried directly
    // with prompt-composed canvases.
    let mut rng = Rng::new(0xBB);
    let model = mlp(&ModelSpec::new(3, 16, 10), &mut rng).unwrap();
    let naive = QueryOracle::new(model, 10);
    let prompt = VisualPrompt::random(3, 16, 2, &mut rng)
        .unwrap()
        .with_style(PromptStyle::Pad);

    let mut batch_rng = Rng::new(7);
    let mut naive_images = 0u64;
    // Downstream resolutions both at and away from the prompt's inner
    // window, batch sizes 1..=6.
    for (n, t) in [(1usize, 12usize), (4, 12), (2, 8), (6, 10), (3, 12)] {
        let batch = Tensor::rand_uniform(&[n, 3, t, t], 0.0, 1.0, &mut batch_rng);
        let via_composite = system.query(&batch).unwrap();
        let via_naive = naive.query(&prompt.apply_batch(&batch).unwrap()).unwrap();
        naive_images += n as u64;
        assert_eq!(
            via_composite.data(),
            via_naive.data(),
            "identity-mapped composite must answer bit-identically to \
             naive forwarding for [{n}, 3, {t}, {t}]"
        );
        assert_eq!(
            system.queries_used(),
            naive_images,
            "composite must bill n backbone images per n-image query"
        );
    }
    assert_eq!(naive.queries_used(), naive_images, "naive leg sanity");
}

/// Property 2a: prompt adaptation runs the backbone strictly frozen —
/// parameters, batch-norm buffers, and eval-mode probe outputs are
/// byte-identical before and after `train_prompt_backprop` with the
/// scenario's own prompt settings.
#[test]
fn frozen_backbone_invariant_under_prompt_training() {
    let mut rng = Rng::new(11);
    let source = SynthDataset::Cifar10.generate(10, 16, 3).unwrap();
    let spec = ModelSpec::new(3, 16, 10);
    let mut model = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
    Trainer::new(TrainConfig::fast())
        .fit(&mut model, &source.images, &source.labels, &mut rng)
        .unwrap();

    let params_before = model.export_params();
    let buffers_before = model.export_buffers();
    let probe = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
    let out_before = model.forward(&probe, Mode::Eval).unwrap();

    // Downstream adaptation exactly as `build_backbone_zoo` performs it:
    // pad-style prompt on the backbone canvas, identity label map, clean
    // downstream data.
    let downstream = SynthDataset::Stl10.generate(5, 8, 4).unwrap();
    let map = LabelMap::identity(10, 10).unwrap();
    let mut prompt = VisualPrompt::random(3, 16, 2, &mut rng)
        .unwrap()
        .with_style(PromptStyle::Pad);
    let cfg = PromptTrainConfig {
        epochs: 2,
        ..PromptTrainConfig::default()
    };
    train_prompt_backprop(
        &mut model,
        &mut prompt,
        &downstream.images,
        &downstream.labels,
        &map,
        &cfg,
        &mut rng,
    )
    .unwrap();

    assert_eq!(
        model.export_params(),
        params_before,
        "prompt training must not touch backbone parameters"
    );
    assert_eq!(
        model.export_buffers(),
        buffers_before,
        "prompt training must not touch batch-norm running statistics"
    );
    assert_eq!(
        model.forward(&probe, Mode::Eval).unwrap(),
        out_before,
        "a frozen backbone answers probes bit-identically after adaptation"
    );
}

/// Property 2b, through the real zoo path: unsealing a zoo-built
/// composite and re-hashing its parts reproduces the fingerprint taken
/// *before* sealing — nothing in adaptation, fingerprinting, or the
/// query boundary drifted a single backbone/prompt/map bit.
#[test]
fn zoo_composites_rehash_to_their_recorded_fingerprints() {
    let mut cfg = BackboneScenarioConfig::new(
        SynthDataset::Cifar10,
        SynthDataset::Stl10,
        AttackKind::BadNets,
    );
    cfg.clean = 1;
    cfg.backdoored = 1;
    cfg.samples_per_class = 30;
    cfg.downstream_samples_per_class = 10;
    cfg.prompt = PromptTrainConfig {
        epochs: 2,
        ..PromptTrainConfig::default()
    };
    let zoo = build_backbone_zoo(&cfg, &mut Rng::new(21)).unwrap();
    assert_eq!(zoo.len(), 2);
    for system in zoo {
        let recorded = system.fingerprint.clone();
        // Exercise the sealed query path first: answering queries must
        // not perturb the frozen state the fingerprint covers.
        let probe = Tensor::rand_uniform(
            &[2, 3, cfg.downstream_size, cfg.downstream_size],
            0.0,
            1.0,
            &mut Rng::new(5),
        );
        system.system.query(&probe).unwrap();
        let (oracle, prompt, map) = system.system.into_parts();
        let model = oracle.into_inner();
        assert_eq!(
            composite_fingerprint(&model, &prompt, &map),
            recorded,
            "unsealed parts must re-hash to the pre-seal fingerprint"
        );
    }
}

/// Property 3: the trigger-inversion budget fence is exact to the query
/// behind a hostile fault/retry stack. Billing covers delivered
/// responses only, stops strictly before the cap at generation
/// granularity, and reconciles: every candidate in a completed
/// generation either delivered `n` images or was penalized for zero.
#[test]
fn inversion_budget_is_exact_under_faults_and_retries() {
    let system = composite_for(0xFE);
    let plan = Stack(vec![
        Box::new(Transient { rate: 0.25 }),
        Box::new(Quantize { decimals: 3 }),
    ]);
    let faulty = FaultyOracle::new(&system, plan, 0xFA17);
    let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());

    let probes = Tensor::rand_uniform(&[4, 3, 12, 12], 0.0, 1.0, &mut Rng::new(9));
    let n = probes.shape()[0] as u64;
    let base = TriggerInversionConfig {
        generations: 6,
        ..TriggerInversionConfig::default()
    };
    let per_generation = base.population as u64 * n;
    // Room for three generations plus half of a fourth: the fourth must
    // never start, no matter how faults redistribute the billing.
    let budget = 3 * per_generation + per_generation / 2;
    let cfg = TriggerInversionConfig {
        query_budget: Some(budget),
        ..base
    };

    let report = invert_trigger(&retrying, &probes, &cfg, &mut Rng::new(13)).unwrap();
    assert!(report.budget_exhausted, "fence must trip mid-search");
    assert!(report.queries <= budget, "never crosses the cap");
    // Exact reconciliation: the fence stopped after the third generation
    // of class 0, so exactly 3 × population candidates ran; each either
    // delivered its full n-image batch or faulted through retry
    // exhaustion and billed nothing.
    assert_eq!(
        report.queries + report.penalized_candidates * n,
        3 * per_generation,
        "delivered + penalized candidates must account for every \
         candidate in the completed generations"
    );
    assert!(
        retrying.oracle_stats().faults_injected > 0,
        "a 25 % transient rate must inject faults over the search"
    );

    // Content-keyed faults: the entire report (billing included) is
    // reproducible from the seeds.
    let faulty = FaultyOracle::new(
        &system,
        Stack(vec![
            Box::new(Transient { rate: 0.25 }),
            Box::new(Quantize { decimals: 3 }),
        ]),
        0xFA17,
    );
    let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
    let replay = invert_trigger(&retrying, &probes, &cfg, &mut Rng::new(13)).unwrap();
    assert_eq!(
        report, replay,
        "hostile-stack inversion must be deterministic"
    );
}

/// Property 3 corner: a budget smaller than one generation stops the
/// search before a single image is submitted.
#[test]
fn inversion_budget_below_one_generation_submits_nothing() {
    let system = composite_for(0xAA);
    let probes = Tensor::rand_uniform(&[4, 3, 12, 12], 0.0, 1.0, &mut Rng::new(3));
    let n = probes.shape()[0] as u64;
    let base = TriggerInversionConfig::default();
    let cfg = TriggerInversionConfig {
        query_budget: Some(base.population as u64 * n - 1),
        ..base
    };
    let report = invert_trigger(&system, &probes, &cfg, &mut Rng::new(1)).unwrap();
    assert!(report.budget_exhausted);
    assert_eq!(report.queries, 0, "no partial generation may start");
    assert_eq!(system.queries_used(), 0, "the oracle never saw an image");
}
