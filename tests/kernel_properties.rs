//! Property sweep for the packed GEMM + batched-im2col conv kernels:
//! every kernel-backed op is checked against the retained scalar oracles
//! in `bprom_tensor::reference` over seeded sweeps of awkward shapes —
//! unit dims, primes, and ±1 around every blocking parameter
//! (MR 4 / MR_WIDE·NR 8, MC 64, KC 256, NC 512).
//!
//! Equality is **bitwise** wherever the determinism contract promises it
//! (`matmul`/`matmul_tn`/`matmul_nt`, `conv2d`, `conv2d_backward_input`,
//! and `conv2d_backward_weight` against a flat-reduction-order scalar
//! model). `conv2d_backward_weight` vs the *per-sample-order* reference
//! is compared to rounding tolerance only: the kernel reduces over one
//! flat `n·oh·ow` axis while the pre-kernel implementation summed
//! complete per-sample dots in batch order (see DESIGN.md §5h for the
//! golden-fixture re-bless this ordering change required).
//!
//! The build environment is offline, so instead of proptest each sweep
//! draws `CASES` shape tuples from a seeded [`Rng`]; a failing case
//! index pins the exact inputs.

use bprom_suite::par;
use bprom_suite::tensor::reference::{
    conv2d_backward_input_reference, conv2d_backward_weight_reference, conv2d_reference,
    matmul_reference,
};
use bprom_suite::tensor::{
    conv2d, conv2d_backward_input, conv2d_backward_weight, pad2d, Rng, Tensor,
};
use std::sync::Mutex;

const CASES: u64 = 48;
const SEED_BASE: u64 = 0x4b45_524e; // "KERN"

/// Guards the process-global `bprom_par` thread knob: the invariance
/// test flips it, and no other test here may time-slice against that.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

fn case_rng(case: u64) -> Rng {
    Rng::new(SEED_BASE ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Picks one element of `choices` using the case RNG.
fn pick<T: Copy>(choices: &[T], rng: &mut Rng) -> T {
    let u = rng.next_u64() as usize;
    choices[u % choices.len()]
}

fn assert_bits(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs: {x:?} vs {y:?}"
        );
    }
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        let scale = 1.0 + x.abs().max(y.abs());
        assert!(
            (x - y).abs() <= tol * scale,
            "{what}: element {i} differs beyond {tol}: {x} vs {y}"
        );
    }
}

// ---- GEMM ----

/// Dims that straddle every microkernel/blocking boundary: 1, small
/// primes, NR±1 (7..9), MC±1 (63..65).
const MN_DIMS: &[usize] = &[1, 2, 3, 5, 7, 8, 9, 13, 17, 31, 63, 64, 65];
/// The reduction dim additionally straddles the KC=256 panel boundary
/// and the k ≤ 384 single-panel stretch.
const K_DIMS: &[usize] = &[1, 2, 3, 5, 7, 8, 9, 13, 31, 64, 65, 255, 256, 257, 384, 385];

#[test]
fn matmul_bitwise_matches_reference_on_awkward_shapes() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let m = pick(MN_DIMS, &mut rng);
        let k = pick(K_DIMS, &mut rng);
        let n = pick(MN_DIMS, &mut rng);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let packed = a.matmul(&b).unwrap();
        let oracle = matmul_reference(&a, &b).unwrap();
        assert_bits(
            &packed,
            &oracle,
            &format!("case {case}: matmul {m}x{k}x{n}"),
        );
    }
}

#[test]
fn matmul_tn_bitwise_matches_transposed_reference() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let m = pick(MN_DIMS, &mut rng);
        let k = pick(K_DIMS, &mut rng);
        let n = pick(MN_DIMS, &mut rng);
        let at = Tensor::randn(&[k, m], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let packed = at.matmul_tn(&b).unwrap();
        let oracle = matmul_reference(&at.transpose().unwrap(), &b).unwrap();
        assert_bits(
            &packed,
            &oracle,
            &format!("case {case}: matmul_tn {m}x{k}x{n}"),
        );
    }
}

#[test]
fn matmul_nt_bitwise_matches_transposed_reference() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let m = pick(MN_DIMS, &mut rng);
        let k = pick(K_DIMS, &mut rng);
        let n = pick(MN_DIMS, &mut rng);
        let a = Tensor::randn(&[m, k], &mut rng);
        let bt = Tensor::randn(&[n, k], &mut rng);
        let packed = a.matmul_nt(&bt).unwrap();
        let oracle = matmul_reference(&a, &bt.transpose().unwrap()).unwrap();
        assert_bits(
            &packed,
            &oracle,
            &format!("case {case}: matmul_nt {m}x{k}x{n}"),
        );
    }
}

// ---- conv ----

/// One random conv problem with every dial on an awkward setting.
/// `o` deliberately straddles the backward-input hybrid threshold
/// (`GEMM_MIN_O = 16`) so both the whole-batch-GEMM and the fused
/// per-channel paths are swept, and `stride` covers both col2im paths
/// (extended-row buffer at stride 1, per-element scatter above).
struct ConvCase {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    o: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
}

fn conv_case(rng: &mut Rng) -> ConvCase {
    loop {
        let case = ConvCase {
            n: pick(&[1, 2, 3, 5], rng),
            c: pick(&[1, 2, 3, 5, 8], rng),
            h: pick(&[4, 5, 7, 8, 9, 16], rng),
            w: pick(&[4, 5, 7, 8, 9, 16], rng),
            o: pick(&[1, 3, 8, 15, 16, 17, 33], rng),
            kh: pick(&[1, 2, 3, 5], rng),
            kw: pick(&[1, 2, 3, 5], rng),
            stride: pick(&[1, 2, 3], rng),
            pad: pick(&[0, 1, 2], rng),
        };
        // Keep only windows that fit the padded input.
        if case.h + 2 * case.pad >= case.kh && case.w + 2 * case.pad >= case.kw {
            return case;
        }
    }
}

/// Scalar model of the kernel-backed `conv2d_backward_weight` reduction
/// order: each `grad_w[oi, ki]` accumulates over the one flat `n·oh·ow`
/// axis in strictly increasing order from 0.0, one separate mul+add per
/// step — exactly the contract the packed GEMM keeps, so the comparison
/// below is bitwise.
fn backward_weight_flat_order(
    input: &Tensor,
    grad_output: &Tensor,
    kernel: (usize, usize),
    stride: usize,
    pad: usize,
) -> Tensor {
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (kh, kw) = kernel;
    let o = grad_output.shape()[1];
    let (oh, ow) = (grad_output.shape()[2], grad_output.shape()[3]);
    let padded = pad2d(input, pad).unwrap();
    let (hp, wp) = (h + 2 * pad, w + 2 * pad);
    let pd = padded.data();
    let go = grad_output.data();
    let k = c * kh * kw;
    let spat = oh * ow;
    let mut gw = vec![0.0f32; o * k];
    for oi in 0..o {
        for ki in 0..k {
            let (ci, khi, kwi) = (ki / (kh * kw), (ki / kw) % kh, ki % kw);
            let mut acc = 0.0f32;
            for ni in 0..n {
                let g_row = &go[(ni * o + oi) * spat..][..spat];
                for (j, &gv) in g_row.iter().enumerate() {
                    let (oy, ox) = (j / ow, j % ow);
                    let iv = pd[((ni * c + ci) * hp + oy * stride + khi) * wp + ox * stride + kwi];
                    acc += gv * iv;
                }
            }
            gw[oi * k + ki] = acc;
        }
    }
    Tensor::from_vec(gw, &[o, c, kh, kw]).unwrap()
}

#[test]
fn conv2d_bitwise_matches_reference() {
    for case in 0..CASES {
        let mut rng = case_rng(0x100 ^ case);
        let cc = conv_case(&mut rng);
        let x = Tensor::randn(&[cc.n, cc.c, cc.h, cc.w], &mut rng);
        let wt = Tensor::randn(&[cc.o, cc.c, cc.kh, cc.kw], &mut rng);
        let fast = conv2d(&x, &wt, cc.stride, cc.pad).unwrap();
        let oracle = conv2d_reference(&x, &wt, cc.stride, cc.pad).unwrap();
        assert_bits(&fast, &oracle, &format!("case {case}: conv2d"));
    }
}

#[test]
fn conv2d_backward_input_bitwise_matches_reference() {
    for case in 0..CASES {
        let mut rng = case_rng(0x200 ^ case);
        let cc = conv_case(&mut rng);
        let x_shape = [cc.n, cc.c, cc.h, cc.w];
        let wt = Tensor::randn(&[cc.o, cc.c, cc.kh, cc.kw], &mut rng);
        let y = conv2d(&Tensor::zeros(&x_shape), &wt, cc.stride, cc.pad).unwrap();
        let gy = Tensor::randn(y.shape(), &mut rng);
        let fast = conv2d_backward_input(&wt, &gy, &x_shape, cc.stride, cc.pad).unwrap();
        let oracle =
            conv2d_backward_input_reference(&wt, &gy, &x_shape, cc.stride, cc.pad).unwrap();
        assert_bits(
            &fast,
            &oracle,
            &format!(
                "case {case}: backward_input o={} stride={}",
                cc.o, cc.stride
            ),
        );
    }
}

#[test]
fn conv2d_backward_weight_bitwise_matches_flat_order_model() {
    for case in 0..CASES {
        let mut rng = case_rng(0x300 ^ case);
        let cc = conv_case(&mut rng);
        let x = Tensor::randn(&[cc.n, cc.c, cc.h, cc.w], &mut rng);
        let wt = Tensor::randn(&[cc.o, cc.c, cc.kh, cc.kw], &mut rng);
        let y = conv2d(&x, &wt, cc.stride, cc.pad).unwrap();
        let gy = Tensor::randn(y.shape(), &mut rng);
        let fast = conv2d_backward_weight(&x, &gy, (cc.kh, cc.kw), cc.stride, cc.pad).unwrap();
        let model = backward_weight_flat_order(&x, &gy, (cc.kh, cc.kw), cc.stride, cc.pad);
        assert_bits(&fast, &model, &format!("case {case}: backward_weight"));
    }
}

#[test]
fn conv2d_backward_weight_matches_per_sample_reference_to_tolerance() {
    for case in 0..CASES {
        let mut rng = case_rng(0x400 ^ case);
        let cc = conv_case(&mut rng);
        let x = Tensor::randn(&[cc.n, cc.c, cc.h, cc.w], &mut rng);
        let wt = Tensor::randn(&[cc.o, cc.c, cc.kh, cc.kw], &mut rng);
        let y = conv2d(&x, &wt, cc.stride, cc.pad).unwrap();
        let gy = Tensor::randn(y.shape(), &mut rng);
        let fast = conv2d_backward_weight(&x, &gy, (cc.kh, cc.kw), cc.stride, cc.pad).unwrap();
        let oracle =
            conv2d_backward_weight_reference(&x, &gy, (cc.kh, cc.kw), cc.stride, cc.pad).unwrap();
        // Same value up to summation-order rounding, never bit-compared.
        assert_close(
            &fast,
            &oracle,
            1e-4,
            &format!("case {case}: backward_weight vs per-sample"),
        );
    }
}

// ---- threading ----

/// Shapes big enough to clear the kernels' `PAR_MIN_FLOPS` gate, so the
/// 4-thread leg genuinely runs on the worker pool.
#[test]
fn results_invariant_under_thread_count() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let mut rng = Rng::new(SEED_BASE);
    let a = Tensor::randn(&[128, 129], &mut rng);
    let b = Tensor::randn(&[129, 128], &mut rng);
    let x = Tensor::randn(&[8, 8, 16, 16], &mut rng);
    let wt = Tensor::randn(&[32, 8, 3, 3], &mut rng);
    let y1;
    let gw1;
    let gx1;
    let mm1;
    par::set_thread_count(1);
    {
        mm1 = a.matmul(&b).unwrap();
        y1 = conv2d(&x, &wt, 1, 1).unwrap();
        let gy = Tensor::ones(y1.shape());
        gw1 = conv2d_backward_weight(&x, &gy, (3, 3), 1, 1).unwrap();
        gx1 = conv2d_backward_input(&wt, &gy, x.shape(), 1, 1).unwrap();
    }
    par::set_thread_count(4);
    let mm4 = a.matmul(&b).unwrap();
    let y4 = conv2d(&x, &wt, 1, 1).unwrap();
    let gy = Tensor::ones(y4.shape());
    let gw4 = conv2d_backward_weight(&x, &gy, (3, 3), 1, 1).unwrap();
    let gx4 = conv2d_backward_input(&wt, &gy, x.shape(), 1, 1).unwrap();
    par::set_thread_count(0);
    assert_bits(&mm1, &mm4, "matmul 1t vs 4t");
    assert_bits(&y1, &y4, "conv2d 1t vs 4t");
    assert_bits(&gw1, &gw4, "backward_weight 1t vs 4t");
    assert_bits(&gx1, &gx4, "backward_input 1t vs 4t");
}

// ---- error paths ----

#[test]
fn degenerate_shapes_are_rejected_not_miscomputed() {
    // Zero dimensions are rejected at construction.
    assert!(Tensor::from_vec(vec![], &[0, 4]).is_err());
    assert!(Tensor::from_vec(vec![], &[4, 0]).is_err());

    // Inner-dim mismatches error identically in kernel and oracle.
    let mut rng = Rng::new(SEED_BASE ^ 0xdead);
    let a = Tensor::randn(&[3, 4], &mut rng);
    let b = Tensor::randn(&[5, 2], &mut rng);
    assert!(a.matmul(&b).is_err());
    assert!(matmul_reference(&a, &b).is_err());

    // Rank violations.
    let v = Tensor::randn(&[4], &mut rng);
    assert!(v.matmul(&a).is_err());
    assert!(a.matmul_tn(&v).is_err());
    assert!(a.matmul_nt(&v).is_err());

    // Conv window larger than the padded input, and zero stride.
    let x = Tensor::randn(&[1, 1, 2, 2], &mut rng);
    let w_big = Tensor::randn(&[1, 1, 5, 5], &mut rng);
    assert!(conv2d(&x, &w_big, 1, 0).is_err());
    assert!(conv2d_reference(&x, &w_big, 1, 0).is_err());
    let w_ok = Tensor::randn(&[1, 1, 2, 2], &mut rng);
    assert!(conv2d(&x, &w_ok, 0, 0).is_err());
    let gy = Tensor::randn(&[1, 1, 1, 1], &mut rng);
    assert!(conv2d_backward_input(&w_ok, &gy, &[1, 1, 2, 2], 0, 0).is_err());
    assert!(conv2d_backward_weight(&x, &gy, (2, 2), 0, 0).is_err());
}
