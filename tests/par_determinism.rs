//! Determinism contract of the data-parallel layer (`bprom-par`): the
//! full fit + inspect pipeline must produce *byte-identical* detection
//! reports — scores, AUROC/F1 and the exact query budget — at any thread
//! count. Every parallel work unit (shadow, prompt, CMA-ES candidate,
//! forest tree) derives its own child RNG stream up front, so worker
//! scheduling cannot leak into the numbers.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{
    build_suspicious_zoo, evaluate_detector, evaluate_detector_via, Bprom, BpromConfig,
    DetectionReport, OracleRegime, ZooConfig,
};
use bprom_suite::data::SynthDataset;
use bprom_suite::defenses::trigger_inversion::{invert_trigger, TriggerInversionConfig};
use bprom_suite::faults::{
    AdaptiveConfig, AdaptiveOracle, FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack,
    Transient,
};
use bprom_suite::nn::models::{mlp, ModelSpec};
use bprom_suite::nn::TrainConfig;
use bprom_suite::par;
use bprom_suite::scenarios::{
    build_backbone_zoo, evaluate_backbone_zoo, evaluate_backbone_zoo_via, BackboneScenarioConfig,
    PromptedBackbone,
};
use bprom_suite::tensor::{Rng, Tensor};
use bprom_suite::vp::{
    BlackBoxModel, LabelMap, PromptStyle, PromptTrainConfig, QueryOracle, VisualPrompt,
};
use std::sync::Mutex;

/// Serializes the tests in this file: each one flips the process-global
/// worker-pool size, so they must not interleave.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

/// The oracle decorations a determinism leg can exercise on top of the
/// declared regime.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Hostility {
    /// Bare oracle.
    None,
    /// Retry → transient faults + quantization.
    Faulty,
    /// An adaptive attacker probing for audit traffic and answering
    /// evasively once it believes it is being probed.
    Adaptive,
}

/// One identically-seeded fit + zoo + evaluate run at whatever thread
/// count is currently installed; `hostile` stacks fault injection plus
/// retries on every inspected oracle. The regime comes from the
/// environment (`BPROM_ORACLE_REGIME`), so the CI `regimes` job re-runs
/// these legs under `top_k:3` and `label_only` unchanged.
fn run_pipeline(hostile: bool) -> DetectionReport {
    let regime = OracleRegime::from_env_or(OracleRegime::FullScores);
    let hostility = if hostile {
        Hostility::Faulty
    } else {
        Hostility::None
    };
    run_regime_pipeline(regime, hostility)
}

/// `run_pipeline` with the oracle regime pinned explicitly (immune to
/// `BPROM_ORACLE_REGIME`) and the hostility tier selectable.
fn run_regime_pipeline(regime: OracleRegime, hostility: Hostility) -> DetectionReport {
    let mut rng = Rng::new(42);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.regime = regime;
    if hostility == Hostility::Adaptive {
        // Pad-style prompting carries the bit-identical-border signature
        // the adaptive attacker's similarity test detects; the default
        // overlay style adds θ onto image pixels and leaves nothing
        // bit-shared for a per-batch test to key on.
        config.prompt_style = PromptStyle::Pad;
    }
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 20;
    zoo_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    let mut report = match hostility {
        Hostility::None => evaluate_detector(&detector, zoo, &mut rng).unwrap(),
        // The hostile stack: 10 % transient drops absorbed by bounded
        // retries, responses quantized to 3 decimals. Fault draws are
        // keyed on query content (never arrival order), so this is as
        // schedule-invariant as the fault-free pipeline.
        Hostility::Faulty => {
            evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
                let plan = Stack(vec![
                    Box::new(Transient { rate: 0.1 }),
                    Box::new(Quantize { decimals: 3 }),
                ]);
                let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
                let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
                detector.inspect(&retrying, rng)
            })
            .unwrap()
        }
        // The adaptive attacker's probe tests and fabricated answers are
        // pure functions of batch content, so evasion decisions cannot
        // depend on worker scheduling either.
        Hostility::Adaptive => {
            evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
                let adaptive = AdaptiveOracle::new(&oracle, AdaptiveConfig::default(), 0xADA9);
                detector.inspect(&adaptive, rng)
            })
            .unwrap()
        }
    };
    // Wall-clock is the one legitimately nondeterministic field; zero it
    // so the comparison below covers everything else byte-for-byte.
    report.mean_inspect_ms = 0.0;
    report
}

#[test]
fn reports_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    par::set_thread_count(1);
    let sequential = run_pipeline(false);
    par::set_thread_count(4);
    let parallel = run_pipeline(false);
    par::set_thread_count(0);

    assert!(parallel.total_queries > 0);
    // Byte-identical JSON: identical scores, labels, AUROC, F1 and query
    // budgets regardless of worker count.
    assert_eq!(
        sequential.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "thread count leaked into the detection report"
    );
}

/// The determinism contract must survive a hostile oracle: fault
/// injection and retries are content-keyed, so the full report —
/// including the fault/retry totals — is byte-identical at any thread
/// count.
#[test]
fn faulty_reports_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    par::set_thread_count(1);
    let sequential = run_pipeline(true);
    par::set_thread_count(4);
    let parallel = run_pipeline(true);
    par::set_thread_count(0);

    assert!(parallel.total_queries > 0);
    assert!(
        parallel.total_faults > 0,
        "a 10 % transient rate must inject faults over a full inspection"
    );
    assert!(
        parallel.total_retries > 0,
        "injected transient faults must be absorbed by retries"
    );
    assert_eq!(
        sequential.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "thread count leaked into the faulty detection report"
    );
}

/// Shared body for the regime legs: one threads=1 vs threads=4 pair,
/// byte-identical after the wall-clock scrub, with the regime recorded
/// on every audit.
fn assert_regime_thread_invariant(regime: OracleRegime, hostility: Hostility) -> DetectionReport {
    let _guard = THREAD_KNOB.lock().unwrap();
    par::set_thread_count(1);
    let sequential = run_regime_pipeline(regime, hostility);
    par::set_thread_count(4);
    let parallel = run_regime_pipeline(regime, hostility);
    par::set_thread_count(0);

    assert!(parallel.total_queries > 0);
    for audit in &parallel.audits {
        assert_eq!(
            audit.regime,
            regime.as_wire(),
            "audit must record its regime"
        );
    }
    assert_eq!(
        sequential.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "thread count leaked into the {regime} detection report"
    );
    parallel
}

/// Top-k truncation (`top_k:3`): the renormalized fitness and features
/// are as schedule-invariant as the full-scores path.
#[test]
fn top_k_reports_identical_across_thread_counts() {
    assert_regime_thread_invariant(OracleRegime::TopK(3), Hostility::None);
}

/// Label-only: the miss-rate fitness and vote-count features never see a
/// soft score, and the report is still byte-identical at any thread
/// count.
#[test]
fn label_only_reports_identical_across_thread_counts() {
    assert_regime_thread_invariant(OracleRegime::LabelOnly, Hostility::None);
}

/// One identically-seeded backbone-scenario run at whatever thread count
/// is installed: fit the detector, build a {clean, BadNets} prompted-
/// backbone composite zoo, and evaluate it under `Scenario::Backbone` —
/// optionally behind the hostile retry → fault stack. The regime comes
/// from the environment, so the CI `regimes` job re-runs these legs
/// under `label_only` unchanged.
fn run_backbone_pipeline(hostile: bool) -> DetectionReport {
    let mut rng = Rng::new(42);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.regime = OracleRegime::from_env_or(OracleRegime::FullScores);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = BackboneScenarioConfig::new(
        SynthDataset::Cifar10,
        SynthDataset::Stl10,
        AttackKind::BadNets,
    );
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 30;
    zoo_cfg.downstream_samples_per_class = 10;
    zoo_cfg.prompt = PromptTrainConfig {
        epochs: 2,
        ..PromptTrainConfig::default()
    };
    let zoo = build_backbone_zoo(&zoo_cfg, &mut rng).unwrap();
    let mut report = if hostile {
        evaluate_backbone_zoo_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
            let plan = Stack(vec![
                Box::new(Transient { rate: 0.1 }),
                Box::new(Quantize { decimals: 3 }),
            ]);
            let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            detector.inspect(&retrying, rng)
        })
        .unwrap()
    } else {
        evaluate_backbone_zoo(&detector, zoo, &mut rng).unwrap()
    };
    report.mean_inspect_ms = 0.0;
    report
}

/// Backbone scenario, tier 1: backbone pretraining, frozen prompt
/// adaptation, label-map translation and the `Scenario::Backbone`
/// evaluation loop are all thread-invariant — the report is
/// byte-identical at 1 and 4 workers, scenario stamp and attestation
/// included.
#[test]
fn backbone_reports_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    par::set_thread_count(1);
    let sequential = run_backbone_pipeline(false);
    par::set_thread_count(4);
    let parallel = run_backbone_pipeline(false);
    par::set_thread_count(0);

    assert!(parallel.total_queries > 0);
    assert_eq!(parallel.scenario, "backbone");
    for audit in &parallel.audits {
        assert_eq!(audit.scenario, "backbone");
        assert!(
            audit.signals.clean_downstream_training,
            "backbone audits must carry the clean-downstream attestation"
        );
    }
    assert_eq!(
        sequential.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "thread count leaked into the backbone-scenario detection report"
    );
}

/// Backbone scenario, tier 2: the {plain, hostile} × threads {1, 4}
/// matrix, every report byte-identical to the threads=1 baseline of its
/// hostility tier.
#[test]
#[ignore = "tier-2 backbone matrix (4 full runs); CI backbone job runs it via -- --ignored"]
fn backbone_matrix_reports_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    for hostile in [false, true] {
        par::set_thread_count(1);
        let sequential = run_backbone_pipeline(hostile);
        par::set_thread_count(4);
        let parallel = run_backbone_pipeline(hostile);
        par::set_thread_count(0);

        if hostile {
            assert!(parallel.total_faults > 0);
            assert!(parallel.total_retries > 0);
        }
        assert_eq!(
            sequential.to_json().unwrap(),
            parallel.to_json().unwrap(),
            "thread count leaked into the hostile={hostile} backbone report"
        );
    }
}

/// The trigger-inversion baseline evaluates candidates sequentially, but
/// the composite's forward passes go through the same threaded kernels
/// as everything else — its whole report (per-class ASRs, anomaly,
/// billing) must be identical at any thread count.
#[test]
fn trigger_inversion_reports_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let composite = || {
        let mut rng = Rng::new(0x1A);
        let model = mlp(&ModelSpec::new(3, 16, 10), &mut rng).unwrap();
        let prompt = VisualPrompt::random(3, 16, 2, &mut rng)
            .unwrap()
            .with_style(PromptStyle::Pad);
        let map = LabelMap::identity(10, 10).unwrap();
        PromptedBackbone::new(QueryOracle::new(model, 10), prompt, map).unwrap()
    };
    let probes = Tensor::rand_uniform(&[4, 3, 12, 12], 0.0, 1.0, &mut Rng::new(8));
    let cfg = TriggerInversionConfig {
        generations: 2,
        ..TriggerInversionConfig::default()
    };
    par::set_thread_count(1);
    let system = composite();
    let sequential = invert_trigger(&system, &probes, &cfg, &mut Rng::new(3)).unwrap();
    par::set_thread_count(4);
    let system = composite();
    let parallel = invert_trigger(&system, &probes, &cfg, &mut Rng::new(3)).unwrap();
    par::set_thread_count(0);

    assert!(parallel.queries > 0);
    assert_eq!(system.queries_used(), parallel.queries);
    assert_eq!(
        sequential, parallel,
        "thread count leaked into the trigger-inversion report"
    );
}

/// The adaptive-attacker tier: a provider that detects the audit's probe
/// patterns and answers evasively. Its decisions are content-keyed, so
/// the whole report — including the evasion tallies and the B012
/// findings they raise — is byte-identical at any thread count.
#[test]
fn adaptive_attacker_reports_identical_across_thread_counts() {
    let report = assert_regime_thread_invariant(OracleRegime::FullScores, Hostility::Adaptive);
    let evasions: u64 = report
        .audits
        .iter()
        .map(|a| a.signals.evasive_responses)
        .sum();
    assert!(
        evasions > 0,
        "the default adaptive config must trip on visual-prompt probe batches"
    );
    assert!(
        report
            .audits
            .iter()
            .any(|a| { a.findings.iter().any(|f| f.rule.code() == "B012") }),
        "evasive answering must raise the B012 oracle-evasion rule"
    );
}
