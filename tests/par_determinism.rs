//! Determinism contract of the data-parallel layer (`bprom-par`): the
//! full fit + inspect pipeline must produce *byte-identical* detection
//! reports — scores, AUROC/F1 and the exact query budget — at any thread
//! count. Every parallel work unit (shadow, prompt, CMA-ES candidate,
//! forest tree) derives its own child RNG stream up front, so worker
//! scheduling cannot leak into the numbers.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{
    build_suspicious_zoo, evaluate_detector, evaluate_detector_via, Bprom, BpromConfig,
    DetectionReport, ZooConfig,
};
use bprom_suite::data::SynthDataset;
use bprom_suite::faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_suite::nn::TrainConfig;
use bprom_suite::par;
use bprom_suite::tensor::Rng;
use bprom_suite::vp::PromptTrainConfig;
use std::sync::Mutex;

/// Serializes the tests in this file: each one flips the process-global
/// worker-pool size, so they must not interleave.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

/// One identically-seeded fit + zoo + evaluate run at whatever thread
/// count is currently installed; `hostile` stacks fault injection plus
/// retries on every inspected oracle.
fn run_pipeline(hostile: bool) -> DetectionReport {
    let mut rng = Rng::new(42);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 4,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 20;
    zoo_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    let mut report = if hostile {
        // The hostile stack: 10 % transient drops absorbed by bounded
        // retries, responses quantized to 3 decimals. Fault draws are
        // keyed on query content (never arrival order), so this is as
        // schedule-invariant as the fault-free pipeline.
        evaluate_detector_via(&detector, zoo, &mut rng, |detector, oracle, rng| {
            let plan = Stack(vec![
                Box::new(Transient { rate: 0.1 }),
                Box::new(Quantize { decimals: 3 }),
            ]);
            let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
            let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
            detector.inspect(&retrying, rng)
        })
        .unwrap()
    } else {
        evaluate_detector(&detector, zoo, &mut rng).unwrap()
    };
    // Wall-clock is the one legitimately nondeterministic field; zero it
    // so the comparison below covers everything else byte-for-byte.
    report.mean_inspect_ms = 0.0;
    report
}

#[test]
fn reports_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    par::set_thread_count(1);
    let sequential = run_pipeline(false);
    par::set_thread_count(4);
    let parallel = run_pipeline(false);
    par::set_thread_count(0);

    assert!(parallel.total_queries > 0);
    // Byte-identical JSON: identical scores, labels, AUROC, F1 and query
    // budgets regardless of worker count.
    assert_eq!(
        sequential.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "thread count leaked into the detection report"
    );
}

/// The determinism contract must survive a hostile oracle: fault
/// injection and retries are content-keyed, so the full report —
/// including the fault/retry totals — is byte-identical at any thread
/// count.
#[test]
fn faulty_reports_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    par::set_thread_count(1);
    let sequential = run_pipeline(true);
    par::set_thread_count(4);
    let parallel = run_pipeline(true);
    par::set_thread_count(0);

    assert!(parallel.total_queries > 0);
    assert!(
        parallel.total_faults > 0,
        "a 10 % transient rate must inject faults over a full inspection"
    );
    assert!(
        parallel.total_retries > 0,
        "injected transient faults must be absorbed by retries"
    );
    assert_eq!(
        sequential.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "thread count leaked into the faulty detection report"
    );
}
