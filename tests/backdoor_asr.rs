//! Cross-crate integration: training on a poisoned dataset must yield a
//! model with high clean accuracy AND a working backdoor — the paper's
//! Tables 14/15 precondition. Thresholds are scaled to the miniature
//! substrate; adaptive and clean-label attacks trade ASR for stealth
//! (paper Tables 8 and 12 show the same effect), so their bars are lower.

use bprom_suite::attacks::{attack_success_rate, poison_dataset, AttackKind};
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::{build, Architecture, ModelSpec};
use bprom_suite::nn::{TrainConfig, Trainer};
use bprom_suite::tensor::Rng;

fn run_attack(kind: AttackKind, seed: u64) -> (f32, f32) {
    let mut rng = Rng::new(seed);
    let data = SynthDataset::Cifar10.generate(40, 16, seed).unwrap();
    let (train, test) = data.split(0.8, &mut rng).unwrap();
    let attack = kind.build(16, &mut rng).unwrap();
    let cfg = kind.default_config(0);
    let poisoned = poison_dataset(&train, attack.as_ref(), &cfg, &mut rng).unwrap();
    let spec = ModelSpec::new(3, 16, 10);
    let mut model = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
    let trainer = Trainer::new(TrainConfig::default());
    trainer
        .fit(
            &mut model,
            &poisoned.dataset.images,
            &poisoned.dataset.labels,
            &mut rng,
        )
        .unwrap();
    let acc = trainer
        .evaluate(&mut model, &test.images, &test.labels)
        .unwrap();
    let asr = attack_success_rate(&mut model, attack.as_ref(), &test, &cfg, &mut rng).unwrap();
    (acc, asr)
}

#[test]
fn badnets_high_asr_and_clean_acc() {
    let (acc, asr) = run_attack(AttackKind::BadNets, 10);
    assert!(acc > 0.8, "clean accuracy {acc}");
    assert!(asr > 0.9, "attack success rate {asr}");
}

#[test]
fn blend_high_asr() {
    let (acc, asr) = run_attack(AttackKind::Blend, 11);
    assert!(acc > 0.75, "clean accuracy {acc}");
    assert!(asr > 0.7, "attack success rate {asr}");
}

#[test]
fn trojan_high_asr() {
    let (acc, asr) = run_attack(AttackKind::Trojan, 12);
    assert!(acc > 0.8, "clean accuracy {acc}");
    assert!(asr > 0.8, "attack success rate {asr}");
}

#[test]
fn wanet_warping_backdoor_works() {
    let (acc, asr) = run_attack(AttackKind::WaNet, 13);
    assert!(acc > 0.75, "clean accuracy {acc}");
    assert!(asr > 0.35, "attack success rate {asr}");
}

#[test]
#[ignore = "tier-2 model-training sweep; CI runs it via -- --ignored"]
fn dynamic_sample_specific_backdoor_works() {
    let (acc, asr) = run_attack(AttackKind::Dynamic, 14);
    assert!(acc > 0.8, "clean accuracy {acc}");
    assert!(asr > 0.6, "attack success rate {asr}");
}

#[test]
fn adaptive_attacks_work() {
    let (acc, asr) = run_attack(AttackKind::AdapBlend, 15);
    assert!(acc > 0.75, "Adap-Blend clean accuracy {acc}");
    assert!(asr > 0.5, "Adap-Blend ASR {asr}");
    let (acc, asr) = run_attack(AttackKind::AdapPatch, 16);
    assert!(acc > 0.75, "Adap-Patch clean accuracy {acc}");
    assert!(asr > 0.45, "Adap-Patch ASR {asr}");
}

#[test]
fn feature_space_backdoors_work() {
    let (acc, asr) = run_attack(AttackKind::Refool, 17);
    assert!(acc > 0.8, "Refool clean accuracy {acc}");
    assert!(asr > 0.8, "Refool ASR {asr}");
    let (acc, asr) = run_attack(AttackKind::Bpp, 18);
    assert!(acc > 0.8, "BPP clean accuracy {acc}");
    assert!(asr > 0.7, "BPP ASR {asr}");
    let (acc, asr) = run_attack(AttackKind::PoisonInk, 19);
    assert!(acc > 0.8, "Poison-Ink clean accuracy {acc}");
    assert!(asr > 0.5, "Poison-Ink ASR {asr}");
}

#[test]
fn clean_label_lc_backdoor_works() {
    let (acc, asr) = run_attack(AttackKind::LabelConsistent, 20);
    assert!(acc > 0.8, "LC clean accuracy {acc}");
    assert!(asr > 0.6, "LC ASR {asr}");
}

#[test]
fn clean_label_sig_plants_weak_backdoor() {
    // SIG's ASR is modest even in the paper (0.83 on the real substrate,
    // lower here); it must at least beat the ~0.1 chance level clearly.
    let (acc, asr) = run_attack(AttackKind::Sig, 21);
    assert!(acc > 0.8, "SIG clean accuracy {acc}");
    assert!(asr > 0.2, "SIG ASR {asr}");
}
